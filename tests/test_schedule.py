"""Unit tests for the Schedule container and platform adapters."""

import pytest

from repro.core.commvector import CommVector
from repro.core.schedule import (
    ChainAdapter,
    Schedule,
    SpiderAdapter,
    StarAdapter,
    TaskAssignment,
    TreeAdapter,
    adapter_for,
)
from repro.core.types import ScheduleError
from repro.platforms.chain import Chain
from repro.platforms.spider import Spider
from repro.platforms.star import Star
from repro.platforms.tree import Tree


@pytest.fixture
def chain() -> Chain:
    return Chain(c=(2, 3), w=(3, 5))


@pytest.fixture
def chain_schedule(chain) -> Schedule:
    s = Schedule(chain)
    s.add(TaskAssignment(1, 1, 2, CommVector([0])))
    s.add(TaskAssignment(2, 2, 9, CommVector([4, 6])))
    return s


class TestAdapters:
    def test_adapter_dispatch(self, chain):
        assert isinstance(adapter_for(chain), ChainAdapter)
        assert isinstance(adapter_for(Star([(1, 2)])), StarAdapter)
        assert isinstance(adapter_for(Spider([chain])), SpiderAdapter)
        assert isinstance(adapter_for(Tree([(0, 1, 1, 1)])), TreeAdapter)

    def test_adapter_rejects_unknown(self):
        with pytest.raises(ScheduleError):
            adapter_for(object())

    def test_chain_routes_and_ports(self, chain):
        a = ChainAdapter(chain)
        assert a.route(2) == [1, 2]
        assert a.sender(1) == 0 and a.sender(2) == 1
        assert a.receiver(2) == 2
        assert a.work(2) == 5 and a.latency(1) == 2

    def test_star_shares_master_port(self):
        a = StarAdapter(Star([(1, 2), (3, 4)]))
        assert a.sender(1) == "master" and a.sender(2) == "master"
        assert a.route(2) == [2]

    def test_spider_routes(self):
        sp = Spider([Chain(c=(1, 2), w=(1, 2)), Chain(c=(3,), w=(4,))])
        a = SpiderAdapter(sp)
        assert a.route((1, 2)) == [(1, 1), (1, 2)]
        assert a.sender((1, 1)) == "master" and a.sender((2, 1)) == "master"
        assert a.sender((1, 2)) == (1, 1)
        assert a.processors() == [(1, 1), (1, 2), (2, 1)]

    def test_tree_routes(self):
        t = Tree([(0, 1, 2, 3), (1, 2, 1, 4), (1, 3, 2, 5)])
        a = TreeAdapter(t)
        assert a.route(3) == [1, 3]
        assert a.sender(3) == 1 and a.sender(1) == 0
        assert a.work(2) == 4 and a.latency(3) == 2


class TestScheduleBasics:
    def test_makespan(self, chain_schedule):
        # task 1 ends at 2+3=5; task 2 at 9+5=14
        assert chain_schedule.makespan == 14

    def test_empty_makespan(self, chain):
        assert Schedule(chain).makespan == 0

    def test_completion_of(self, chain_schedule):
        assert chain_schedule.completion_of(1) == 5
        assert chain_schedule.completion_of(2) == 14

    def test_duplicate_task_rejected(self, chain, chain_schedule):
        with pytest.raises(ScheduleError):
            chain_schedule.add(TaskAssignment(1, 1, 0, CommVector([0])))

    def test_wrong_vector_length_rejected(self, chain):
        s = Schedule(chain)
        with pytest.raises(ScheduleError):
            s.add(TaskAssignment(1, 2, 0, CommVector([0])))  # route has 2 links

    def test_missing_task_lookup(self, chain_schedule):
        with pytest.raises(ScheduleError):
            chain_schedule[99]

    def test_accessors(self, chain_schedule):
        assert chain_schedule.processor_of(2) == 2
        assert chain_schedule.start_of(1) == 2
        assert chain_schedule.comms_of(2).times == (4, 6)

    def test_tasks_sorted(self, chain_schedule):
        assert chain_schedule.tasks() == [1, 2]

    def test_tasks_on(self, chain_schedule):
        assert chain_schedule.tasks_on(1) == [1]
        assert chain_schedule.tasks_on(2) == [2]

    def test_task_counts(self, chain_schedule):
        assert chain_schedule.task_counts() == {1: 1, 2: 1}


class TestIntervals:
    def test_link_intervals(self, chain_schedule):
        ivs = chain_schedule.link_intervals()
        assert ivs[1] == [(0, 2, 1), (4, 6, 2)]
        assert ivs[2] == [(6, 9, 2)]

    def test_port_intervals_chain(self, chain_schedule):
        ivs = chain_schedule.port_intervals()
        assert ivs[0] == [(0, 2, 1), (4, 6, 2)]  # master = node 0
        assert ivs[1] == [(6, 9, 2)]

    def test_processor_intervals(self, chain_schedule):
        ivs = chain_schedule.processor_intervals()
        assert ivs[1] == [(2, 5, 1)]
        assert ivs[2] == [(9, 14, 2)]

    def test_star_port_intervals_merge(self):
        star = Star([(2, 3), (4, 5)])
        s = Schedule(star)
        s.add(TaskAssignment(1, 1, 2, CommVector([0])))
        s.add(TaskAssignment(2, 2, 6, CommVector([2])))
        ivs = s.port_intervals()
        assert ivs["master"] == [(0, 2, 1), (2, 6, 2)]


class TestTransformations:
    def test_shift(self, chain_schedule):
        shifted = chain_schedule.shifted(10)
        assert shifted.makespan == 24
        assert shifted[1].comms.times == (10,)

    def test_normalised(self, chain):
        s = Schedule(chain)
        s.add(TaskAssignment(1, 1, 7, CommVector([5])))
        norm = s.normalised()
        assert norm.earliest_emission == 0
        assert norm[1].start == 2

    def test_restricted_to(self, chain_schedule):
        r = chain_schedule.restricted_to([2])
        assert r.tasks() == [2] and r.makespan == 14

    def test_renumbered(self, chain):
        s = Schedule(chain)
        s.add(TaskAssignment(5, 1, 2, CommVector([0])))
        s.add(TaskAssignment(3, 1, 5, CommVector([2])))
        rn = s.renumbered()
        assert rn.tasks() == [1, 2]
        assert rn[1].first_emission == 0  # earliest emission becomes task 1

    def test_round_trip_dict(self, chain_schedule):
        d = chain_schedule.to_dict()
        back = Schedule.from_dict(d)
        assert back.makespan == chain_schedule.makespan
        assert back[2].comms.times == (4, 6)

    def test_spider_round_trip_tuple_keys(self):
        sp = Spider([Chain(c=(1,), w=(2,))])
        s = Schedule(sp)
        s.add(TaskAssignment(1, (1, 1), 1, CommVector([0])))
        back = Schedule.from_dict(s.to_dict())
        assert back[1].processor == (1, 1)
