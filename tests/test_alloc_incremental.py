"""The incremental EDF allocator must be *bit-identical* to the reference.

The ``"incremental"`` allocator is the default solve path, so these tests
hold it to the strongest standard available: not just equal accepted counts
(the Moore–Hodgson witness covers cardinality) but element-for-element equal
accepted sets, EDF emissions and rejection order against the paper-literal
``allocate_greedy`` — over raw random slave sets, star expansions and
spider-derived virtual-slave sets alike.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fork import (
    AllocStats,
    VirtualSlave,
    allocate_greedy,
    allocate_incremental,
    allocate_moore_hodgson,
    expand_star,
)
from repro.core.spider import spider_schedule_deadline

from conftest import spiders, stars

#: raw (c, W) populations, heavy on ties to stress the stable-sort matching
slave_sets = st.lists(
    st.tuples(st.integers(1, 4), st.integers(1, 12)), min_size=0, max_size=24
)


def _assert_identical(candidates, t_lim):
    ref = allocate_greedy(candidates, t_lim)
    inc = allocate_incremental(candidates, t_lim)
    assert inc.accepted == ref.accepted
    assert inc.emissions == ref.emissions
    assert inc.rejected == ref.rejected
    moore = allocate_moore_hodgson(candidates, t_lim)
    assert inc.n_tasks == moore.n_tasks


class TestBitIdentity:
    @given(slave_sets, st.integers(0, 30))
    @settings(max_examples=200, deadline=None)
    def test_random_slave_sets(self, raw, t_lim):
        slaves = [VirtualSlave(c, w, i) for i, (c, w) in enumerate(raw)]
        _assert_identical(slaves, t_lim)

    @given(slave_sets, st.integers(0, 30))
    @settings(max_examples=100, deadline=None)
    def test_duplicate_heavy_sets(self, raw, t_lim):
        """Every slave twice: equal (deadline, c) keys everywhere, so any
        tie-break mismatch against the stable reference sorts would show."""
        slaves = [
            VirtualSlave(c, w, (i, rep))
            for i, (c, w) in enumerate(raw)
            for rep in (0, 1)
        ]
        _assert_identical(slaves, t_lim)

    @given(stars(max_k=4), st.integers(0, 40))
    @settings(max_examples=100, deadline=None)
    def test_star_expansions(self, star, t_lim):
        """Candidates as the fork algorithm produces them (Fig. 6 ladders)."""
        _assert_identical(expand_star(star, t_lim), t_lim)

    @given(spiders(max_legs=3, max_depth=3), st.integers(0, 30))
    @settings(max_examples=60, deadline=None)
    def test_spider_derived_nodes(self, sp, t_lim):
        """Candidates as the spider pipeline produces them (Fig. 7 nodes)."""
        nodes = spider_schedule_deadline(sp, t_lim).fork_nodes
        _assert_identical(nodes, t_lim)

    def test_zero_latency_first_link(self):
        """Spider legs may have a zero-latency first link → c = 0 slaves."""
        slaves = [VirtualSlave(0, 5, "a"), VirtualSlave(2, 3, "b"),
                  VirtualSlave(0, 9, "c")]
        _assert_identical(slaves, 10)

    def test_float_inputs_delegate_to_greedy(self):
        """Re-associated float sums can flip marginal accept decisions (e.g.
        d − 0.3 < 0.6 while 0.6 + 0.3 ≤ d under IEEE rounding), so on
        inexact inputs the incremental allocator must fall back to the
        reference greedy — this instance diverged before the fallback."""
        slaves = [
            VirtualSlave(c, w, i)
            for i, (c, w) in enumerate(
                [(0.6, 0.6), (1.1, 2.8), (0.6, 1.2),
                 (0.3, 0.30000000000000004), (0.7, 1.1), (0.6, 0.4),
                 (1.1, 2.2)]
            )
        ]
        _assert_identical(slaves, 1.2)

    @given(
        st.lists(
            st.tuples(
                st.floats(0.1, 4, allow_nan=False),
                st.floats(0.1, 9, allow_nan=False),
            ),
            min_size=0,
            max_size=16,
        ),
        st.floats(0, 25, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_float_slave_sets(self, raw, t_lim):
        slaves = [VirtualSlave(c, w, i) for i, (c, w) in enumerate(raw)]
        _assert_identical(slaves, t_lim)

    def test_fraction_inputs_stay_on_fast_path(self):
        """Fractions are exact, so they keep the k·log k structure; the
        result must still match greedy bit-for-bit."""
        from fractions import Fraction as F

        slaves = [
            VirtualSlave(F(3, 2), F(5, 3), 0),
            VirtualSlave(F(1, 2), F(7, 3), 1),
            VirtualSlave(F(3, 2), F(1, 3), 2),
        ]
        _assert_identical(slaves, F(9, 2))


class TestStatsCounters:
    def test_incremental_work_is_subquadratic(self):
        """On a big ladder the incremental allocator must do asymptotically
        less deadline-structure work than the reference rescan."""
        k = 512
        slaves = [VirtualSlave(1 + i % 3, 1 + i, i) for i in range(k)]
        t_lim = 2 * k
        ref_stats, inc_stats = AllocStats(), AllocStats()
        ref = allocate_greedy(slaves, t_lim, stats=ref_stats)
        inc = allocate_incremental(slaves, t_lim, stats=inc_stats)
        assert inc.accepted == ref.accepted
        assert inc_stats.candidates == ref_stats.candidates == k
        assert inc_stats.accepted == ref_stats.accepted
        # reference is Ω(accepted²); incremental must stay O(k·log k)-ish
        assert ref_stats.structure_ops > inc_stats.structure_ops
        assert inc_stats.structure_ops <= 80 * k  # generous c·k·log₂k bound

    def test_counters_accumulate(self):
        stats = AllocStats()
        slaves = [VirtualSlave(1, 2, 0), VirtualSlave(1, 3, 1)]
        allocate_incremental(slaves, 10, stats=stats)
        allocate_incremental(slaves, 10, stats=stats)
        assert stats.candidates == 4
        assert stats.accepted + stats.rejected == 4
        assert stats.structure_ops > 0

    def test_merge(self):
        a, b = AllocStats(candidates=2, structure_ops=5), AllocStats(accepted=1)
        a.merge(b)
        assert a.candidates == 2 and a.accepted == 1 and a.structure_ops == 5


class TestEmissionLookup:
    def test_dict_backed_lookup(self):
        slaves = [VirtualSlave(2, 3, "a"), VirtualSlave(1, 5, "b")]
        alloc = allocate_incremental(slaves, 12)
        for slave, emit in zip(alloc.accepted, alloc.emissions):
            assert alloc.emission_of(slave.tag) == emit
