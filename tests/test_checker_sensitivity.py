"""Adversarial sensitivity tests: the validators must *catch* corruption.

A checker that always says "feasible" would pass every other test in this
suite.  Here we take provably-feasible schedules from the algorithms,
corrupt them in targeted ways, and assert both validators (static checker
and discrete-event executor) reject the corruption.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chain import schedule_chain
from repro.core.commvector import CommVector
from repro.core.feasibility import check, is_feasible
from repro.core.schedule import Schedule, TaskAssignment
from repro.core.spider import spider_schedule
from repro.core.types import SimulationError
from repro.platforms.presets import paper_fig5_spider
from repro.sim.executor import execute

from conftest import chains


def _with_assignment(schedule: Schedule, task: int, a: TaskAssignment) -> Schedule:
    """Copy of ``schedule`` with one assignment replaced (bypasses add())."""
    clone = Schedule(schedule.platform, dict(schedule.assignments))
    clone.assignments[task] = a
    return clone


class TestStaticCheckerCatchesCorruption:
    @given(chains(max_p=4), st.integers(2, 6))
    @settings(max_examples=40, deadline=None)
    def test_start_before_arrival_always_caught(self, ch, n):
        s = schedule_chain(ch, n)
        for t in s.tasks():
            a = s[t]
            route_latency = sum(
                ch.latency(j) for j in range(1, a.processor + 1)
            )
            bad_start = a.first_emission + route_latency - 1  # 1 unit early
            corrupted = _with_assignment(
                s, t, TaskAssignment(t, a.processor, bad_start, a.comms)
            )
            assert not is_feasible(corrupted), f"task {t} corruption missed"

    @given(chains(max_p=4), st.integers(2, 6))
    @settings(max_examples=40, deadline=None)
    def test_duplicated_emission_always_caught(self, ch, n):
        """Two tasks emitted at the same instant on link 1 must clash."""
        s = schedule_chain(ch, n)
        t1, t2 = s.tasks()[0], s.tasks()[1]
        a2 = s[t2]
        stolen = list(a2.comms.times)
        stolen[0] = s[t1].comms[1]  # same first emission as task 1
        corrupted = _with_assignment(
            s, t2, TaskAssignment(t2, a2.processor, a2.start, CommVector(stolen))
        )
        violations = check(corrupted)
        assert violations, "duplicate emission not caught"

    @given(chains(max_p=4), st.integers(2, 5))
    @settings(max_examples=30, deadline=None)
    def test_colliding_executions_always_caught(self, ch, n):
        s = schedule_chain(ch, n)
        counts = s.task_counts()
        proc, cnt = max(counts.items(), key=lambda kv: kv[1])
        if cnt < 2:
            return
        tasks = s.tasks_on(proc)
        a_first, a_second = s[tasks[0]], s[tasks[1]]
        corrupted = _with_assignment(
            s,
            tasks[1],
            TaskAssignment(tasks[1], proc, a_first.start, a_second.comms),
        )
        assert any("condition 3" in v or "condition 2" in v for v in check(corrupted))

    def test_relay_before_reception_caught_on_spider(self):
        sp = paper_fig5_spider()
        s = spider_schedule(sp, 6)
        deep = [t for t in s.tasks() if len(s[t].comms) >= 2]
        if not deep:
            pytest.skip("no relayed task in this schedule")
        t = deep[0]
        a = s[t]
        times = list(a.comms.times)
        times[1] = times[0]  # relay starts the instant the emission starts
        corrupted = _with_assignment(
            s, t, TaskAssignment(t, a.processor, a.start, CommVector(times))
        )
        assert any("condition 1" in v for v in check(corrupted))


class TestExecutorCatchesCorruption:
    @given(chains(max_p=3), st.integers(2, 5))
    @settings(max_examples=25, deadline=None)
    def test_executor_agrees_with_checker_on_corruption(self, ch, n):
        """Any start-before-arrival corruption must also fail execution."""
        s = schedule_chain(ch, n)
        t = s.tasks()[0]
        a = s[t]
        route_latency = sum(ch.latency(j) for j in range(1, a.processor + 1))
        bad = _with_assignment(
            s,
            t,
            TaskAssignment(
                t, a.processor, a.first_emission + route_latency - 1, a.comms
            ),
        )
        with pytest.raises(SimulationError):
            execute(bad)

    def test_two_independent_validators(self, fig2_chain):
        """The validators are independent implementations: corrupting the
        port discipline trips them both."""
        s = schedule_chain(fig2_chain, 4)
        t2 = s.tasks()[1]
        a = s[t2]
        times = list(a.comms.times)
        times[0] = s[1].comms[1]  # collide with task 1 on link 1
        bad = _with_assignment(
            s, t2, TaskAssignment(t2, a.processor, a.start, CommVector(times))
        )
        assert check(bad)
        with pytest.raises(SimulationError):
            execute(bad)
