"""Tests of the discrete-event engine, the schedule executor and the online
policies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chain import schedule_chain
from repro.core.commvector import CommVector
from repro.core.feasibility import check
from repro.core.schedule import Schedule, TaskAssignment
from repro.core.spider import spider_schedule
from repro.core.types import SimulationError
from repro.platforms.chain import Chain
from repro.platforms.presets import paper_fig2_chain, seti_like_spider
from repro.platforms.star import Star
from repro.sim.engine import Simulator
from repro.sim.events import Event, EventKind, event_sort_key
from repro.sim.executor import execute, verify_by_execution
from repro.sim.online import ONLINE_POLICIES, simulate_online
from repro.sim.trace import trace_to_schedule

from conftest import chains, spiders


class TestEngine:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        seen = []
        sim.at(5, lambda s: seen.append(5))
        sim.at(1, lambda s: seen.append(1))
        sim.at(3, lambda s: seen.append(3))
        sim.run()
        assert seen == [1, 3, 5]

    def test_fifo_at_same_time(self):
        sim = Simulator()
        seen = []
        sim.at(1, lambda s: seen.append("a"))
        sim.at(1, lambda s: seen.append("b"))
        sim.run()
        assert seen == ["a", "b"]

    def test_priority_orders_simultaneous(self):
        sim = Simulator()
        seen = []
        sim.at(1, lambda s: seen.append("low"), priority=5)
        sim.at(1, lambda s: seen.append("high"), priority=0)
        sim.run()
        assert seen == ["high", "low"]

    def test_handlers_can_schedule_more(self):
        sim = Simulator()
        seen = []

        def first(s):
            seen.append(s.now)
            s.after(2, lambda s2: seen.append(s2.now))

        sim.at(1, first)
        end = sim.run()
        assert seen == [1, 3] and end == 3

    def test_cannot_schedule_in_past(self):
        sim = Simulator()

        def bad(s):
            s.at(0, lambda s2: None)

        sim.at(5, bad)
        with pytest.raises(SimulationError):
            sim.run()

    def test_negative_delay_rejected(self):
        sim = Simulator()
        sim.at(1, lambda s: s.after(-1, lambda s2: None))
        with pytest.raises(SimulationError):
            sim.run()

    def test_run_until(self):
        sim = Simulator()
        seen = []
        sim.at(1, lambda s: seen.append(1))
        sim.at(10, lambda s: seen.append(10))
        sim.run(until=5)
        assert seen == [1] and sim.pending == 1

    def test_event_budget(self):
        sim = Simulator()

        def loop(s):
            s.after(1, loop)

        sim.at(0, loop)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_event_sort_key_ends_before_starts(self):
        e_end = Event(5, EventKind.SEND_END, 1, "x")
        e_start = Event(5, EventKind.SEND_START, 1, "x")
        assert event_sort_key(e_end) < event_sort_key(e_start)


class TestExecutor:
    def test_fig2_executes_exactly(self, fig2_chain):
        s = schedule_chain(fig2_chain, 5)
        trace = verify_by_execution(s)
        assert trace.makespan == 14
        assert trace.tasks_completed() == 5

    def test_detects_port_conflict(self):
        ch = Chain(c=(2,), w=(10,))
        s = Schedule(ch)
        s.assignments[1] = TaskAssignment(1, 1, 2, CommVector([0]))
        s.assignments[2] = TaskAssignment(2, 1, 12, CommVector([1]))  # overlap
        with pytest.raises(SimulationError):
            execute(s)

    def test_detects_premature_execution(self):
        ch = Chain(c=(2,), w=(3,))
        s = Schedule(ch)
        s.assignments[1] = TaskAssignment(1, 1, 1, CommVector([0]))  # arrives at 2
        with pytest.raises(SimulationError):
            execute(s)

    def test_detects_premature_relay(self):
        ch = Chain(c=(2, 2), w=(3, 3))
        s = Schedule(ch)
        s.assignments[1] = TaskAssignment(1, 2, 10, CommVector([0, 1]))
        with pytest.raises(SimulationError):
            execute(s)

    def test_detects_processor_overlap(self):
        ch = Chain(c=(1,), w=(5,))
        s = Schedule(ch)
        s.assignments[1] = TaskAssignment(1, 1, 1, CommVector([0]))
        s.assignments[2] = TaskAssignment(2, 1, 3, CommVector([1]))
        with pytest.raises(SimulationError):
            execute(s)

    @given(chains(max_p=4), st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_every_algorithm_schedule_executes(self, ch, n):
        trace = verify_by_execution(schedule_chain(ch, n))
        assert trace.tasks_completed() == n

    @given(spiders(max_legs=3, max_depth=2), st.integers(1, 6))
    @settings(max_examples=25, deadline=None)
    def test_spider_schedules_execute(self, sp, n):
        trace = verify_by_execution(spider_schedule(sp, n))
        assert trace.tasks_completed() == n

    def test_trace_roundtrip_to_schedule(self, fig2_chain):
        s = schedule_chain(fig2_chain, 5)
        trace = execute(s)
        back = trace_to_schedule(trace, fig2_chain)
        assert back.makespan == s.makespan
        assert back.task_counts() == s.task_counts()

    def test_utilisation_bounds(self, fig2_chain):
        trace = execute(schedule_chain(fig2_chain, 5))
        for resource in trace.busy:
            assert 0.0 <= trace.utilisation(resource) <= 1.0

    def test_summary_fields(self, fig2_chain):
        trace = execute(schedule_chain(fig2_chain, 3))
        summary = trace.summary()
        assert summary["tasks"] == 3
        assert summary["makespan"] == trace.makespan


class TestOnlinePolicies:
    @pytest.mark.parametrize("policy", sorted(ONLINE_POLICIES))
    def test_all_tasks_complete_and_feasible_on_chain(self, policy):
        ch = Chain(c=(2, 3), w=(3, 5))
        res = simulate_online(ch, 7, policy)
        assert res.trace.tasks_completed() == 7
        assert check(res.schedule) == []

    @pytest.mark.parametrize("policy", sorted(ONLINE_POLICIES))
    def test_all_tasks_complete_and_feasible_on_spider(self, policy):
        sp = seti_like_spider()
        res = simulate_online(sp, 12, policy)
        assert res.trace.tasks_completed() == 12
        assert check(res.schedule) == []

    @pytest.mark.parametrize("policy", sorted(ONLINE_POLICIES))
    def test_star_feasible(self, policy):
        star = Star([(1, 3), (2, 2), (4, 1)])
        res = simulate_online(star, 9, policy)
        assert res.trace.tasks_completed() == 9
        assert check(res.schedule) == []

    def test_online_never_beats_offline_optimal(self):
        sp = seti_like_spider()
        opt = spider_schedule(sp, 15).makespan
        for policy in ONLINE_POLICIES:
            assert simulate_online(sp, 15, policy).makespan >= opt

    def test_custom_policy_callable(self):
        ch = Chain(c=(1,), w=(2,))

        def always_first(state, procs, adapter):
            return procs[0]

        res = simulate_online(ch, 3, always_first)
        assert res.policy == "always_first"
        assert res.trace.tasks_completed() == 3

    @given(chains(max_p=3), st.integers(1, 10))
    @settings(max_examples=25, deadline=None)
    def test_demand_driven_feasible_random(self, ch, n):
        res = simulate_online(ch, n, "demand_driven")
        assert res.trace.tasks_completed() == n
        assert check(res.schedule) == []
