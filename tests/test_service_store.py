"""The content-addressed solution store (repro.service.store)."""

import pytest

from repro.platforms.chain import Chain
from repro.platforms.spider import Spider
from repro.service.canon import problem_fingerprint
from repro.service.store import SolutionStore
from repro.solve import Problem, solve
from repro.solve.problem import ValidationError


def solved(n: int = 5):
    problem = Problem(Chain([2, 3], [3, 5]), "makespan", n=n)
    return problem_fingerprint(problem), solve(problem)


class TestMemoryTier:
    def test_miss_then_hit(self):
        store = SolutionStore()
        fp, sol = solved()
        assert store.get(fp) is None
        store.put(fp, sol)
        assert store.get(fp) is sol
        assert store.stats.misses == 1
        assert store.stats.memory_hits == 1
        assert store.stats.writes == 1
        assert fp in store
        assert len(store) == 1

    def test_lru_eviction_order(self):
        store = SolutionStore(capacity=2)
        entries = [solved(n) for n in (3, 4, 5)]
        for fp, sol in entries[:2]:
            store.put(fp, sol)
        store.get(entries[0][0])  # touch: entry 0 is now the hottest
        store.put(*entries[2])    # evicts entry 1, not 0
        assert entries[0][0] in store
        assert entries[1][0] not in store
        assert entries[2][0] in store
        assert store.stats.evictions == 1

    def test_hit_rate(self):
        store = SolutionStore()
        fp, sol = solved()
        store.get(fp)
        store.put(fp, sol)
        store.get(fp)
        assert store.stats.hit_rate() == 0.5
        assert store.stats.to_dict()["hit_rate"] == 0.5


class TestSqliteTier:
    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "solutions.sqlite"
        fp, sol = solved()
        with SolutionStore(path=path) as store:
            store.put(fp, sol)
        with SolutionStore(path=path) as store:
            cached = store.get(fp)
            assert cached is not None
            assert cached.makespan == sol.makespan
            assert store.stats.sqlite_hits == 1
            # the sqlite hit was promoted: second read is a memory hit
            assert store.get(fp) is cached
            assert store.stats.memory_hits == 1

    def test_eviction_falls_back_to_sqlite(self, tmp_path):
        store = SolutionStore(path=tmp_path / "s.sqlite", capacity=1)
        a, b = solved(3), solved(4)
        store.put(*a)
        store.put(*b)  # evicts a from memory; sqlite still holds it
        assert store.stats.evictions == 1
        assert store.get(a[0]) is not None
        assert store.stats.sqlite_hits == 1

    def test_len_counts_persistent_entries(self, tmp_path):
        store = SolutionStore(path=tmp_path / "s.sqlite", capacity=1)
        store.put(*solved(3))
        store.put(*solved(4))
        assert len(store) == 2


class TestValidationOnWrite:
    def test_corrupt_solution_rejected(self):
        store = SolutionStore()
        fp, sol = solved()
        # corrupt the claimed schedule: shift one start to overlap its CPU
        task = sol.schedule.assignments[2]
        sol.schedule.assignments[2] = type(task)(
            task.task, task.processor, task.start - 2, task.comms
        )
        with pytest.raises(ValidationError):
            store.put(fp, sol)
        assert store.stats.rejected == 1
        assert store.stats.writes == 0
        assert fp not in store

    def test_deadline_miss_rejected(self):
        spider = Spider([Chain([2, 3], [3, 5])])
        problem = Problem(spider, "deadline", t_lim=30)
        solution = solve(problem)
        # claim a deadline the schedule cannot hold
        object.__setattr__(solution.problem, "t_lim", solution.makespan - 1)
        with pytest.raises(ValidationError):
            SolutionStore().put("fp", solution)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            SolutionStore(capacity=0)


class TestDamageDegradation:
    """External SQLite damage degrades to a miss / the memory tier —
    never an exception through the serving loop."""

    def seeded(self, path):
        fp, sol = solved()
        with SolutionStore(path=path) as store:
            store.put(fp, sol)
        return fp

    def test_truncated_row_is_quarantined(self, tmp_path):
        import sqlite3

        path = tmp_path / "s.sqlite"
        fp = self.seeded(path)
        with sqlite3.connect(path) as db:  # a foreign writer bit-rots the row
            db.execute(
                "UPDATE solutions SET payload = substr(payload, 1, 25)"
            )
        with SolutionStore(path=path) as store:
            assert store.get(fp) is None  # degrades to a miss, no raise
            assert store.stats.corrupt_rows == 1
            assert store.stats.misses == 1
            (entry,) = store.quarantined()
            assert entry[0] == fp and "JSONDecodeError" in entry[1]
            # the bad row is gone: the next read is a plain miss
            assert store.get(fp) is None
            assert store.stats.corrupt_rows == 1

    def test_row_that_parses_but_fails_replay_is_quarantined(self, tmp_path):
        import json as _json
        import sqlite3

        path = tmp_path / "s.sqlite"
        fp = self.seeded(path)
        with sqlite3.connect(path) as db:
            (payload,) = db.execute(
                "SELECT payload FROM solutions"
            ).fetchone()
            doc = _json.loads(payload)
            doc["schedule"]["assignments"][0]["start"] = 0  # CPU overlap
            db.execute("UPDATE solutions SET payload = ?",
                       (_json.dumps(doc),))
        with SolutionStore(path=path) as store:
            assert store.get(fp) is None
            assert store.stats.corrupt_rows == 1
            (entry,) = store.quarantined()
            assert "ValidationError" in entry[1]

    def test_quarantine_keeps_the_evidence(self, tmp_path):
        import sqlite3

        path = tmp_path / "s.sqlite"
        fp = self.seeded(path)
        with SolutionStore(path=path) as store:
            store.quarantine(fp, "operator request")
            assert store.get(fp) is None
        with sqlite3.connect(path) as db:
            (payload,) = db.execute(
                "SELECT payload FROM quarantine WHERE fingerprint = ?",
                (fp,),
            ).fetchone()
            assert payload  # the original row text survived the eviction

    def test_dead_connection_degrades_to_memory_tier(self, tmp_path):
        store = SolutionStore(path=tmp_path / "s.sqlite")
        fp, sol = solved()
        store.put(fp, sol)
        store._db.close()  # simulate a yanked / corrupt database file
        # memory tier still serves
        assert store.get(fp) is sol
        # sqlite paths degrade instead of raising
        other_fp, other = solved(7)
        assert store.get(other_fp) is None
        store.put(other_fp, other)
        assert store.get(other_fp) is other
        assert other_fp in store
        assert len(store) == 2  # falls back to the memory count
        assert store.quarantined() == []
        assert store.stats.sqlite_errors >= 3
        store._db = None  # close() must not re-close

    def test_stats_expose_damage_counters(self):
        d = SolutionStore().stats.to_dict()
        assert d["corrupt_rows"] == 0 and d["sqlite_errors"] == 0

    def test_concurrent_readers_of_damaged_row_quarantine_once(
        self, tmp_path
    ):
        """Two threads racing onto the same bit-rotted row: neither may
        raise, and the evidence lands in quarantine exactly once."""
        import sqlite3
        import threading

        path = tmp_path / "s.sqlite"
        fp = self.seeded(path)
        with sqlite3.connect(path) as db:
            db.execute(
                "UPDATE solutions SET payload = substr(payload, 1, 25)"
            )
        with SolutionStore(path=path) as store:
            barrier = threading.Barrier(2)
            results, errors = [], []

            def read():
                barrier.wait()
                try:
                    results.append(store.get(fp))
                except Exception as exc:  # pragma: no cover - the failure
                    errors.append(exc)

            threads = [threading.Thread(target=read) for _ in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=10)
            assert errors == []
            assert results == [None, None]  # both degrade to a miss
            assert store.stats.corrupt_rows == 1
            assert len(store.quarantined()) == 1


# ---------------------------------------------------------------------------
# Durability: WAL mode and crash recovery
# ---------------------------------------------------------------------------


class TestDurabilityUnderCrash:
    def test_sqlite_tier_runs_in_wal_mode_with_busy_timeout(self, tmp_path):
        with SolutionStore(path=tmp_path / "s.sqlite") as store:
            (mode,) = store._db.execute("PRAGMA journal_mode").fetchone()
            (busy,) = store._db.execute("PRAGMA busy_timeout").fetchone()
        assert mode == "wal"
        assert busy == 30000

    def test_sigkill_mid_write_loses_no_committed_rows(self, tmp_path):
        """SIGKILL a writer mid-``put`` loop; the reopened store must serve
        every row the writer acknowledged, with zero corrupt rows."""
        import os
        import signal
        import sqlite3
        import subprocess
        import sys
        import time

        path = tmp_path / "s.sqlite"
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        writer = (
            "import sys\n"
            "from repro.platforms.chain import Chain\n"
            "from repro.service.store import SolutionStore\n"
            "from repro.solve import Problem, solve\n"
            "sol = solve(Problem(Chain([2, 3], [3, 5]), 'makespan', n=5))\n"
            f"store = SolutionStore(path={str(path)!r})\n"
            "i = 0\n"
            "while True:\n"
            "    store.put(f'fp{i:05d}', sol)\n"
            "    i += 1\n"
            "    print(i, flush=True)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (os.path.abspath(src), env.get("PYTHONPATH")) if p
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", writer],
            stdout=subprocess.PIPE,
            env=env,
            text=True,
        )
        acked = 0
        try:
            deadline = time.monotonic() + 60
            while acked < 25:
                line = proc.stdout.readline()
                assert line, "writer died before acknowledging 25 puts"
                acked = int(line)
                assert time.monotonic() < deadline
        finally:
            if proc.poll() is None:
                os.kill(proc.pid, signal.SIGKILL)
            proc.wait()
            proc.stdout.close()

        # every acknowledged put was a committed transaction: all of them
        # survive the kill (later, unacknowledged ones may too)
        with sqlite3.connect(path) as db:
            rows = [
                fp for (fp,) in db.execute(
                    "SELECT fingerprint FROM solutions"
                )
            ]
        assert len(rows) >= acked
        with SolutionStore(path=path) as store:
            for fp in rows:
                assert store.get(fp) is not None, f"lost row {fp}"
            assert store.stats.corrupt_rows == 0
            assert store.quarantined() == []
