"""Tests for failure injection and constructive periodic schedules."""

import pytest
from fractions import Fraction

from repro.analysis.periodic import (
    achieved_rate,
    periodic_star_schedule,
    star_periodic_pattern,
)
from repro.analysis.steady_state import star_steady_state
from repro.core.feasibility import check
from repro.core.types import PlatformError, SimulationError
from repro.platforms.chain import Chain
from repro.platforms.presets import seti_like_spider
from repro.platforms.spider import Spider
from repro.platforms.star import Star
from repro.sim.faults import (
    WorkerFailure,
    assert_trace_exclusive,
    simulate_with_failures,
)
from repro.sim.trace import Trace


class TestFailureInjection:
    def test_no_failures_matches_plain_online(self):
        star = Star([(1, 3), (2, 2)])
        res = simulate_with_failures(star, 8, [])
        assert res.completed == 8
        assert res.attempts == 8 and res.reissues == 0
        assert_trace_exclusive(res.trace)

    def test_single_failure_reissues(self):
        star = Star([(1, 3), (2, 2)])
        res = simulate_with_failures(star, 8, [WorkerFailure(3, 1)])
        assert res.completed == 8
        assert res.attempts >= 8
        assert res.survivors == [2]
        assert_trace_exclusive(res.trace)

    def test_failure_degrades_makespan(self):
        star = Star([(1, 3), (1, 3), (1, 3)])
        clean = simulate_with_failures(star, 12, [])
        faulty = simulate_with_failures(star, 12, [WorkerFailure(2, 1)])
        assert faulty.makespan >= clean.makespan

    def test_relay_failure_kills_subtree(self):
        # a chain: killing proc 1 strands proc 2 as well
        ch = Chain(c=(1, 1), w=(2, 2))
        with pytest.raises(SimulationError):
            simulate_with_failures(ch, 4, [WorkerFailure(1, 1)])

    def test_mid_leg_failure_on_spider(self):
        sp = seti_like_spider()
        res = simulate_with_failures(sp, 15, [WorkerFailure(5, (1, 2))])
        assert res.completed == 15
        # (1,2) and its downstream (1,3) are gone
        assert (1, 2) not in res.survivors and (1, 3) not in res.survivors
        assert (1, 1) in res.survivors
        assert_trace_exclusive(res.trace)

    def test_all_dead_raises(self):
        star = Star([(1, 2)])
        with pytest.raises(SimulationError):
            simulate_with_failures(star, 5, [WorkerFailure(1, 1)])

    def test_multiple_failures(self):
        sp = seti_like_spider()
        failures = [WorkerFailure(4, (3, 1)), WorkerFailure(8, (4, 1))]
        res = simulate_with_failures(sp, 20, failures)
        assert res.completed == 20
        assert res.reissues >= 0
        assert_trace_exclusive(res.trace)

    def test_failure_after_completion_is_noop(self):
        star = Star([(1, 2), (1, 2)])
        res = simulate_with_failures(star, 4, [WorkerFailure(10_000, 1)])
        assert res.reissues == 0

    def test_trace_exclusive_detects_overlap(self):
        trace = Trace()
        trace.record_interval("x", 0, 5, 1)
        trace.record_interval("x", 3, 8, 2)
        with pytest.raises(SimulationError):
            assert_trace_exclusive(trace)


class TestPeriodicSchedules:
    def test_pattern_rate_equals_throughput(self):
        star = Star([(1, 4), (2, 3), (1, 6)])
        pattern = star_periodic_pattern(star)
        assert pattern.rate == star_steady_state(star).throughput

    def test_pattern_counts_fit_budgets(self):
        star = Star([(2, 3), (3, 5), (1, 9)])
        p = star_periodic_pattern(star)
        assert sum(k * ch.c for k, ch in zip(p.per_child, star.children)) <= p.period
        assert all(
            k * ch.w <= p.period for k, ch in zip(p.per_child, star.children)
        )

    @pytest.mark.parametrize("periods", [1, 3, 10])
    def test_unrolled_schedule_feasible(self, periods):
        star = Star([(1, 4), (2, 3), (1, 6)])
        s = periodic_star_schedule(star, periods)
        assert check(s) == []
        assert s.n_tasks == periods * star_periodic_pattern(star).tasks_per_period

    def test_rate_converges_to_throughput(self):
        star = Star([(1, 4), (2, 3), (1, 6)])
        thr = float(star_steady_state(star).throughput)
        rates = [achieved_rate(periodic_star_schedule(star, k)) for k in (1, 4, 16)]
        assert all(r <= thr + 1e-9 for r in rates)
        assert rates[0] < rates[-1]
        assert rates[-1] > 0.95 * thr

    def test_port_saturated_star(self):
        star = Star([(2, 1), (2, 1)])  # CPUs fast, port limits to 1/2
        p = star_periodic_pattern(star)
        assert p.rate == Fraction(1, 2)
        s = periodic_star_schedule(star, 4)
        assert check(s) == []

    def test_rejects_zero_periods(self):
        with pytest.raises(PlatformError):
            periodic_star_schedule(Star([(1, 1)]), 0)

    def test_single_child(self):
        star = Star([(3, 2)])
        s = periodic_star_schedule(star, 5)
        assert check(s) == []
        assert achieved_rate(s) <= 1 / 3 + 1e-9
