"""Golden-style tests for the HTML dashboard and the figure pipeline.

The contract under test is **byte-stability**: same inputs, same bytes —
no timestamps, no unsorted iteration, no randomness.  Both pipelines
render from the repo's committed ``benchmarks/BENCH_*.json`` baselines.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

from repro.obs.report import build_dashboard, load_baselines

BENCH_DIR = Path(__file__).parent.parent / "benchmarks"

#: a small but fully-populated metrics snapshot fixture (the JSON shape
#: of ``repro.obs.metrics.MetricsRegistry.snapshot()``).
FIXTURE_SNAPSHOT = {
    "counters": {
        "compile.core_hits": 40, "compile.core_misses": 10,
        "solve_kernel.seq_hits": 30, "solve_kernel.seq_misses": 6,
        "store.memory_hits": 12, "store.sqlite_hits": 3,
        "store.misses": 5, "store.writes": 5,
    },
    "gauges": {},
    "histograms": {
        "service.op_ms{op=solve}": {
            "edges": [1.0, 10.0, 100.0],
            "counts": [5, 10, 2, 1],
            "count": 18, "sum": 140.5, "min": 0.4, "max": 150.0,
        },
    },
}


class TestDashboard:
    def test_loads_all_eight_committed_families(self):
        assert sorted(load_baselines(BENCH_DIR)) == [
            "churn", "online", "replay", "service", "shard", "solve",
            "spider", "tree",
        ]

    def test_byte_stable_across_two_builds(self):
        assert build_dashboard(BENCH_DIR) == build_dashboard(BENCH_DIR)

    def test_byte_stable_with_fixture_snapshot(self):
        one = build_dashboard(BENCH_DIR, FIXTURE_SNAPSHOT)
        two = build_dashboard(BENCH_DIR, FIXTURE_SNAPSHOT)
        assert one == two

    def test_self_contained_and_offline(self):
        html = build_dashboard(BENCH_DIR, FIXTURE_SNAPSHOT)
        assert html.startswith("<!DOCTYPE html>")
        # no external fetches of any kind: one file is the whole report
        # (the SVG xmlns namespace identifier is the one allowed URL)
        stripped = html.replace('xmlns="http://www.w3.org/2000/svg"', "")
        assert "http://" not in stripped and "https://" not in stripped
        assert "<link" not in stripped
        assert 'src="' not in stripped  # no <img>/<script src>

    def test_no_timestamps_or_dates(self):
        html = build_dashboard(BENCH_DIR, FIXTURE_SNAPSHOT)
        assert not re.search(r"\b20\d\d-\d\d-\d\d", html)
        assert "timestamp" not in html.lower()

    def test_renders_expected_sections(self):
        html = build_dashboard(BENCH_DIR, FIXTURE_SNAPSHOT)
        for needle in (
            "Perf trajectory", "Online regret", "Cache hit rates",
            "Latency histograms", "Example schedules",
            # speedups from the committed baselines show up in the chart
            "median_speedup", "service.op_ms{op=solve}",
            # snapshot-derived cache rows
            "snapshot: compile core cache", "snapshot: solution store",
            # the embedded Gantt SVGs from viz/
            "proc ", "link ",
        ):
            assert needle in html, f"dashboard lost its {needle!r} section"

    def test_without_snapshot_prompts_for_one(self):
        html = build_dashboard(BENCH_DIR)
        assert "no metrics snapshot supplied" in html


class TestDashboardCLI:
    def test_report_html_writes_self_contained_file(self, capsys, tmp_path):
        from repro.cli import main

        out = tmp_path / "dash.html"
        snap_path = tmp_path / "snap.json"
        snap_path.write_text(json.dumps(FIXTURE_SNAPSHOT))
        assert main(["report", "--html", str(out),
                     "--bench-dir", str(BENCH_DIR),
                     "--snapshot", str(snap_path)]) == 0
        html = out.read_text()
        assert html == build_dashboard(BENCH_DIR, FIXTURE_SNAPSHOT)
        assert "wrote" in capsys.readouterr().out

    def test_two_cli_runs_are_byte_identical(self, tmp_path):
        from repro.cli import main

        a, b = tmp_path / "a.html", tmp_path / "b.html"
        for path in (a, b):
            assert main(["report", "--html", str(path),
                         "--bench-dir", str(BENCH_DIR)]) == 0
        assert a.read_bytes() == b.read_bytes()


class TestFigures:
    def test_regenerates_every_figure_from_committed_baselines(self, tmp_path):
        from benchmarks.figures import generate_figures

        written = generate_figures(BENCH_DIR, tmp_path)
        names = sorted(p.name for p in written)
        assert names == [
            "churn_repair.svg", "gantt_chain.svg", "gantt_spider.svg",
            "kernel_seconds.svg", "online_regret.svg", "replay_engines.svg",
            "service_latency.svg", "speedups.svg", "tree_efficiency.svg",
        ]
        for path in written:
            body = path.read_text()
            assert body.startswith("<svg"), f"{path.name} is not an SVG"
            assert "<rect" in body or "(empty schedule)" not in body

    def test_figures_are_byte_stable(self, tmp_path):
        from benchmarks.figures import generate_figures

        generate_figures(BENCH_DIR, tmp_path / "one")
        generate_figures(BENCH_DIR, tmp_path / "two")
        for path in sorted((tmp_path / "one").iterdir()):
            assert path.read_bytes() == (
                tmp_path / "two" / path.name
            ).read_bytes(), f"{path.name} not deterministic"

    def test_main_module_entry(self, capsys, tmp_path):
        from benchmarks.figures.__main__ import main

        assert main(["--bench-dir", str(BENCH_DIR),
                     "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert out.count("wrote ") == 9
