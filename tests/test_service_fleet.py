"""The sharded fleet: hash ring, router semantics, supervised workers.

Unit tests drive the :class:`~repro.service.shard.ShardRouter` against
stub workers (no subprocesses), so every failure-handling branch —
load shedding, re-dispatch on death, exhaustion — is pinned exactly.
The end-to-end tests boot a real supervised fleet (worker subprocesses
over stdio pipes) and exercise the contract live: routing, caching,
SIGKILL failover, restart, merged fleet stats, and a miniature chaos
run that must report zero invariant violations.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.io.json_io import problem_to_dict
from repro.platforms.chain import Chain
from repro.platforms.generators import random_spider
from repro.platforms.spider import Spider
from repro.service.shard import HashRing, ShardRouter
from repro.service.supervisor import Supervisor, WorkerConfig, WorkerDied
from repro.solve import Problem, solve

SRC = str(Path(__file__).resolve().parents[1] / "src")


def solve_line(problem, rid="t1"):
    return json.dumps({"id": rid, "op": "solve",
                       "problem": problem_to_dict(problem)})


def spider_problem(seed=1, n=16):
    return Problem(random_spider(4, 3, seed=seed), "makespan", n=n)


# ---------------------------------------------------------------------------
# Hash ring
# ---------------------------------------------------------------------------


class TestHashRing:
    def test_preference_covers_all_shards_distinctly(self):
        ring = HashRing()
        for shard in range(5):
            ring.add(shard)
        pref = ring.preference("some-fingerprint")
        assert sorted(pref) == [0, 1, 2, 3, 4]
        assert pref[0] == ring.owner("some-fingerprint")

    def test_routing_is_deterministic(self):
        a, b = HashRing(), HashRing()
        for shard in range(4):
            a.add(shard)
            b.add(shard)
        keys = [f"fp{i}" for i in range(200)]
        assert [a.owner(k) for k in keys] == [b.owner(k) for k in keys]

    def test_remove_moves_only_the_dead_shards_keys(self):
        ring = HashRing()
        for shard in range(4):
            ring.add(shard)
        keys = [f"fp{i}" for i in range(400)]
        before = {k: ring.owner(k) for k in keys}
        ring.remove(2)
        for k in keys:
            if before[k] != 2:
                # bounded rebalancing: a surviving shard keeps its keys
                assert ring.owner(k) == before[k]
            else:
                assert ring.owner(k) != 2

    def test_failover_order_is_the_preference_walk(self):
        ring = HashRing()
        for shard in range(4):
            ring.add(shard)
        pref = ring.preference("fp")
        ring.remove(pref[0])
        assert ring.owner("fp") == pref[1]

    def test_vnodes_spread_load(self):
        ring = HashRing(vnodes=64)
        for shard in range(4):
            ring.add(shard)
        counts = {s: 0 for s in range(4)}
        for i in range(2000):
            counts[ring.owner(f"fp{i}")] += 1
        # no shard owns more than half the keyspace with 64 vnodes
        assert max(counts.values()) < 1000
        assert min(counts.values()) > 100

    def test_empty_ring(self):
        ring = HashRing()
        assert ring.preference("fp") == []
        assert ring.owner("fp") is None


# ---------------------------------------------------------------------------
# Router semantics against stub workers (no subprocesses)
# ---------------------------------------------------------------------------


class StubWorker:
    def __init__(self, outcome="ok", inflight=0):
        self.outcome = outcome
        self.inflight = inflight
        self.requests = 0
        self.pid = None

    async def request(self, payload, timeout=None):
        self.requests += 1
        if self.outcome == "died":
            raise WorkerDied("stub died")
        if self.outcome == "timeout":
            raise asyncio.TimeoutError()
        return {"id": payload.get("id"), "ok": True, "stub": True}


class StubSupervisor:
    def __init__(self, workers):
        self.workers = workers
        self.slots = list(workers)

    def worker(self, shard_id):
        return self.workers.get(shard_id)

    def stats(self):
        return {"workers": len(self.workers), "restarts": 0,
                "garbled_frames": 0}


def stub_router(workers, **kw):
    router = ShardRouter(len(workers), WorkerConfig(), **kw)
    router.supervisor = StubSupervisor(workers)
    for shard_id in workers:
        router._on_up(shard_id)
    return router


class TestRouterSemantics:
    def run(self, coro):
        return asyncio.run(coro)

    def test_routes_to_live_worker(self):
        workers = {0: StubWorker(), 1: StubWorker()}
        router = stub_router(workers)
        response = self.run(router.handle_line(solve_line(spider_problem())))
        assert response["ok"] and response["stub"]
        assert response["id"] == "t1"
        assert sum(w.requests for w in workers.values()) == 1

    def test_same_problem_same_shard(self):
        workers = {i: StubWorker() for i in range(4)}
        router = stub_router(workers)
        for rid in ("a", "b", "c"):
            self.run(router.handle_line(solve_line(spider_problem(), rid)))
        assert sorted(w.requests for w in workers.values()) == [0, 0, 0, 3]

    def test_saturated_owner_sheds_explicitly(self):
        workers = {0: StubWorker(inflight=2), 1: StubWorker(inflight=2)}
        router = stub_router(workers, max_queue=2)
        response = self.run(router.handle_line(solve_line(spider_problem())))
        assert response["ok"] is False
        assert response["error_kind"] == "overloaded"
        assert response["retriable"] is True
        assert router.shed == 1
        assert all(w.requests == 0 for w in workers.values())

    def test_dead_owner_redispatches_to_survivor(self):
        problem = spider_problem()
        probe = stub_router({i: StubWorker() for i in range(2)})
        self.run(probe.handle_line(solve_line(problem)))
        owner = next(s for s, w in probe.supervisor.workers.items()
                     if w.requests)
        workers = {owner: StubWorker("died"), 1 - owner: StubWorker()}
        router = stub_router(workers)
        response = self.run(router.handle_line(solve_line(problem)))
        assert response["ok"] is True
        assert router.redispatched == 1
        assert workers[1 - owner].requests == 1

    def test_all_dead_is_explicit_unavailable(self):
        router = stub_router({i: StubWorker("died") for i in range(3)})
        response = self.run(router.handle_line(solve_line(spider_problem())))
        assert response["ok"] is False
        assert response["error_kind"] == "unavailable"
        assert response["retriable"] is True

    def test_no_live_shard_is_unavailable(self):
        router = stub_router({0: StubWorker()})
        router._on_down(0)
        router.supervisor.workers.clear()
        response = self.run(router.handle_line(solve_line(spider_problem())))
        assert response["error_kind"] == "unavailable"

    def test_worker_timeout_is_retriable(self):
        router = stub_router({0: StubWorker("timeout")},
                             request_timeout=0.01)
        response = self.run(router.handle_line(solve_line(spider_problem())))
        assert response["error_kind"] == "timeout"
        assert response["retriable"] is True

    def test_bad_payload_is_bad_request(self):
        router = stub_router({0: StubWorker()})
        line = json.dumps({"id": "x", "op": "solve",
                           "problem": {"nonsense": 1}})
        response = self.run(router.handle_line(line))
        assert response["error_kind"] == "bad_request"

    def test_shutdown_refuses_new_solves(self):
        router = stub_router({0: StubWorker()})
        router.begin_shutdown()
        response = self.run(router.handle_line(solve_line(spider_problem())))
        assert response["error_kind"] == "shutting_down"
        assert response["retriable"] is True

    def test_ping_is_local(self):
        router = stub_router({0: StubWorker()})
        response = self.run(router.handle_line(
            json.dumps({"id": "p", "op": "ping"})
        ))
        assert response["ok"] and response["pong"]

    def test_inject_refused_without_chaos_ops(self):
        router = stub_router({0: StubWorker()})
        response = self.run(router.handle_line(
            json.dumps({"id": "i", "op": "inject", "shard": 0,
                        "fault": "hang"})
        ))
        assert response["ok"] is False
        assert response["error_kind"] == "bad_request"


class TestWorkerConfig:
    def test_argv_carries_every_option(self):
        config = WorkerConfig(threads=3, capacity=99, store_path="/tmp/s",
                              solve_engine="object", engine="event",
                              verify_rebinds=False, request_timeout=1.5,
                              chaos_ops=True)
        argv = config.argv(7)
        assert argv[:4] == [sys.executable, "-m", "repro", "serve"]
        for flag, value in (("--workers", "3"), ("--capacity", "99"),
                            ("--store", "/tmp/s.shard7"),
                            ("--solve-engine", "object"),
                            ("--engine", "event"),
                            ("--request-timeout", "1.5")):
            assert value == argv[argv.index(flag) + 1]
        assert "--no-verify-rebinds" in argv
        assert "--chaos-ops" in argv

    def test_env_makes_repro_importable(self):
        env = WorkerConfig.env()
        assert SRC in env["PYTHONPATH"].split(os.pathsep)


# ---------------------------------------------------------------------------
# Real fleet end to end (worker subprocesses)
# ---------------------------------------------------------------------------


class TestFleetEndToEnd:
    def test_solve_cache_kill_failover_restart_stats(self):
        async def scenario():
            router = ShardRouter(2, WorkerConfig(threads=1, capacity=32))
            await router.start()
            try:
                assert sorted(router.live) == [0, 1]
                problem = spider_problem(seed=3)
                reference = solve(problem).makespan

                first = await router.handle_line(solve_line(problem, "a"))
                assert first["ok"] and first["cached"] is False
                second = await router.handle_line(solve_line(problem, "b"))
                assert second["ok"] and second["cached"] is True
                assert first["shard"] == second["shard"]
                from repro.io.json_io import solution_from_dict

                solution = solution_from_dict(second["solution"])
                solution.validate()
                assert solution.makespan == reference

                stats = (await router.handle_line(
                    json.dumps({"id": "s", "op": "stats"})
                ))["stats"]
                assert stats["sharded"] is True
                assert stats["live_shards"] == [0, 1]
                assert stats["store"]["hits"] == 1
                assert stats["supervisor"]["up"] == 2
                assert "solve" in stats["latency"]

                # SIGKILL the owner: the very next identical request must
                # still be answered (failover or re-solve — never an error)
                owner = first["shard"]
                worker = router.supervisor.worker(owner)
                os.kill(worker.pid, signal.SIGKILL)
                third = await router.handle_line(solve_line(problem, "c"))
                assert third["ok"], third

                deadline = time.monotonic() + 20
                while len(router.live) < 2 and time.monotonic() < deadline:
                    await asyncio.sleep(0.05)
                assert sorted(router.live) == [0, 1], "worker never restarted"
                assert router.supervisor.stats()["restarts"] >= 1
            finally:
                await router.aclose()

        asyncio.run(scenario())

    def test_mini_chaos_run_holds_the_contract(self):
        from repro.service.chaos import run_chaos

        report = asyncio.run(run_chaos(
            shards=2, duration_s=2.0, target_kills=3, kill_every=0.3,
            concurrency=4, pool_size=4, n=12, seed=5,
        ))
        assert report["kills"] >= 3
        assert report["violations"] == 0, report["violation_samples"]
        assert report["ok_answers"] > 0
        assert report["requests"] == (
            report["ok_answers"] + report["retriable_errors"]
        )


# ---------------------------------------------------------------------------
# Graceful shutdown of the serving process (SIGTERM drain)
# ---------------------------------------------------------------------------


class TestGracefulDrain:
    def serve_subprocess(self, *extra):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--workers", "1",
             *extra],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL, env=env, text=True,
        )

    def test_sigterm_drains_and_exits_zero(self):
        proc = self.serve_subprocess()
        try:
            problem = Problem(Chain([2, 3], [3, 5]), "makespan", n=5)
            proc.stdin.write(solve_line(problem, "r1") + "\n")
            proc.stdin.flush()
            response = json.loads(proc.stdout.readline())
            assert response["id"] == "r1" and response["ok"]

            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=15) == 0, (
                "SIGTERM must drain and exit 0, not die mid-response"
            )
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.stdin.close()
            proc.stdout.close()

    def test_sigterm_mid_request_still_answers_it(self):
        proc = self.serve_subprocess()
        try:
            # handshake first: a pong proves the serving loop is live and
            # its SIGTERM handler installed (a signal during interpreter
            # startup would hit the default disposition and kill us)
            proc.stdin.write(json.dumps({"id": "hi", "op": "ping"}) + "\n")
            proc.stdin.flush()
            assert json.loads(proc.stdout.readline())["pong"]

            problem = spider_problem(seed=9, n=24)
            proc.stdin.write(solve_line(problem, "rq") + "\n")
            proc.stdin.flush()
            # give the warm loop a beat to *read* the line, then signal
            # while the solve may still be in flight — the drain contract
            # says the answer must be flushed before the process exits
            time.sleep(0.2)
            proc.send_signal(signal.SIGTERM)
            line = proc.stdout.readline()
            assert line, "in-flight request was dropped on SIGTERM"
            response = json.loads(line)
            assert response["id"] == "rq" and response["ok"]
            assert proc.wait(timeout=15) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.stdin.close()
            proc.stdout.close()


# ---------------------------------------------------------------------------
# Supervisor restart budget
# ---------------------------------------------------------------------------


class TestRestartBudget:
    def test_crash_loop_exhausts_budget_and_fails_permanently(self):
        async def scenario():
            # a worker that can never come up: unknown CLI flag, instant exit
            config = WorkerConfig(threads=1)
            broken = WorkerConfig(threads=1)
            object.__setattr__(broken, "argv",
                               lambda shard_id: [sys.executable, "-c",
                                                 "raise SystemExit(3)"])
            object.__setattr__(broken, "env", config.env)
            supervisor = Supervisor(
                1, broken, on_up=lambda s: None, on_down=lambda s: None,
                boot_deadline=0.2, backoff_base=0.01, backoff_cap=0.02,
                restart_budget=3, budget_window=60.0,
            )
            with pytest.raises(Exception):
                await supervisor.start()
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if supervisor.stats()["failed"] == 1:
                    break
                await asyncio.sleep(0.05)
            stats = supervisor.stats()
            assert stats["failed"] == 1, stats
            assert stats["restarts"] <= 3
            await supervisor.aclose()

        asyncio.run(scenario())
