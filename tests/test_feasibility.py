"""Tests of the Definition-1 feasibility checker — one class per condition."""

import pytest

from repro.core.commvector import CommVector
from repro.core.feasibility import (
    assert_feasible,
    check,
    check_deadline,
    emission_order,
    is_feasible,
    port_utilisation,
)
from repro.core.schedule import Schedule, TaskAssignment
from repro.core.types import InfeasibleScheduleError
from repro.platforms.chain import Chain
from repro.platforms.star import Star


@pytest.fixture
def chain() -> Chain:
    return Chain(c=(2, 3), w=(3, 5))


def make(chain, *assignments) -> Schedule:
    s = Schedule(chain)
    for i, (proc, start, comms) in enumerate(assignments, start=1):
        s.add(TaskAssignment(i, proc, start, CommVector(comms)))
    return s


class TestCondition1RelayPrecedence:
    def test_ok(self, chain):
        s = make(chain, (2, 5, [0, 2]))
        assert is_feasible(s)

    def test_reemission_before_reception(self, chain):
        # link 1 takes 2 units; re-emitting at t=1 is too early
        s = make(chain, (2, 9, [0, 1]))
        violations = check(s)
        assert any("condition 1" in v for v in violations)

    def test_exact_boundary_ok(self, chain):
        s = make(chain, (2, 5, [0, 2]))  # reception ends exactly at emission
        assert check(s) == []


class TestCondition2ArrivalBeforeStart:
    def test_start_before_arrival(self, chain):
        s = make(chain, (1, 1, [0]))  # arrives at 2, starts at 1
        assert any("condition 2" in v for v in check(s))

    def test_start_at_arrival_ok(self, chain):
        s = make(chain, (1, 2, [0]))
        assert is_feasible(s)

    def test_buffered_start_ok(self, chain):
        s = make(chain, (1, 10, [0]))  # buffering is allowed
        assert is_feasible(s)


class TestCondition3ProcessorExclusivity:
    def test_overlapping_executions(self, chain):
        s = make(chain, (1, 2, [0]), (1, 4, [2]))  # w1=3: [2,5) and [4,7)
        assert any("condition 3" in v for v in check(s))

    def test_back_to_back_ok(self, chain):
        s = make(chain, (1, 2, [0]), (1, 5, [2]))
        assert is_feasible(s)

    def test_different_processors_may_overlap(self, chain):
        s = make(chain, (1, 2, [0]), (2, 7, [2, 4]))
        assert is_feasible(s)


class TestCondition4PortExclusivity:
    def test_link_overlap(self, chain):
        s = make(chain, (1, 3, [0]), (1, 6, [1]))  # link1 busy [0,2) and [1,3)
        assert any("condition 4" in v for v in check(s))

    def test_master_port_shared_on_star(self):
        star = Star([(2, 3), (2, 3)])
        s = Schedule(star)
        s.add(TaskAssignment(1, 1, 2, CommVector([0])))
        s.add(TaskAssignment(2, 2, 3, CommVector([1])))  # overlaps master port
        assert any("condition 4" in v for v in check(s))

    def test_sequential_master_port_ok(self):
        star = Star([(2, 3), (2, 3)])
        s = Schedule(star)
        s.add(TaskAssignment(1, 1, 2, CommVector([0])))
        s.add(TaskAssignment(2, 2, 4, CommVector([2])))
        assert is_feasible(s)

    def test_send_receive_overlap_allowed(self, chain):
        # processor 1 receives task 2 while sending task 1 onward: legal
        s = make(chain, (2, 5, [0, 2]), (1, 5, [2]))
        # task1: link1 [0,2), link2 [2,5); task2: link1 [2,4) -> node1
        # receives task2 while sending task1 on link2 — allowed
        assert is_feasible(s)

    def test_compute_comm_overlap_allowed(self, chain):
        # processor 1 computes task 1 while relaying task 2 downstream
        s = make(chain, (1, 2, [0]), (2, 7, [2, 4]))
        assert is_feasible(s)


class TestApiSurfaces:
    def test_assert_feasible_raises_with_all_violations(self, chain):
        s = make(chain, (1, 0, [0]), (1, 1, [0]))
        with pytest.raises(InfeasibleScheduleError) as exc:
            assert_feasible(s)
        assert len(exc.value.violations) >= 2

    def test_negative_emission_flagged(self, chain):
        s = make(chain, (1, 2, [-1]))
        assert any("negative" in v for v in check(s))
        assert is_feasible(s, require_nonnegative=False) is False or True

    def test_negative_allowed_when_disabled(self, chain):
        s = make(chain, (1, 1, [-1]))
        assert is_feasible(s, require_nonnegative=False)

    def test_check_deadline(self, chain):
        s = make(chain, (1, 2, [0]))  # completes at 5
        assert check_deadline(s, 5) == []
        assert any("Tlim" in v for v in check_deadline(s, 4))

    def test_emission_order(self, chain):
        s = make(chain, (1, 5, [2]), (1, 2, [0]))
        assert emission_order(s) == [2, 1]

    def test_port_utilisation(self, chain):
        s = make(chain, (1, 2, [0]), (1, 5, [2]))
        assert port_utilisation(s, 0) == 4  # two messages x c1=2

    def test_float_eps_tolerance(self):
        ch = Chain(c=(0.1,), w=(0.2,))
        s = Schedule(ch)
        s.add(TaskAssignment(1, 1, 0.1 + 1e-12, CommVector([0.0])))
        assert is_feasible(s)
