"""Numeric-domain coverage: floats, Fractions, zero-latency masters, scale.

The core algorithms are plain arithmetic, so they must work over any ordered
numeric field: ints (exact, the default), ``fractions.Fraction`` (exact
rationals) and floats (with EPS-tolerant feasibility checking).
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.bruteforce import optimal_makespan
from repro.core.chain import chain_makespan, schedule_chain
from repro.core.chain_fast import schedule_chain_fast
from repro.core.feasibility import check, is_feasible
from repro.core.fork import fork_schedule
from repro.core.spider import spider_schedule
from repro.platforms.chain import Chain
from repro.platforms.spider import Spider
from repro.platforms.star import Star
from repro.sim.executor import verify_by_execution


class TestFloatPlatforms:
    @given(
        st.lists(
            st.floats(min_value=0.1, max_value=9.0, allow_nan=False),
            min_size=2,
            max_size=6,
        ),
        st.integers(1, 6),
    )
    @settings(max_examples=40, deadline=None)
    def test_chain_feasible_on_floats(self, values, n):
        p = len(values) // 2
        ch = Chain(values[:p], values[p : 2 * p])
        s = schedule_chain(ch, n)
        assert s.n_tasks == n
        assert check(s) == []

    def test_float_chain_matches_bruteforce(self):
        ch = Chain(c=(1.5, 2.25), w=(3.5, 1.75))
        for n in (1, 2, 3, 4):
            ours = chain_makespan(ch, n)
            exact = optimal_makespan(ch, n).makespan
            assert ours == pytest.approx(exact)

    def test_float_star(self):
        star = Star([(0.5, 1.5), (1.25, 0.75)])
        s = fork_schedule(star, 4)
        assert s.n_tasks == 4
        assert check(s) == []

    def test_float_executes_on_simulator(self):
        ch = Chain(c=(0.5, 1.5), w=(2.5, 1.0))
        verify_by_execution(schedule_chain(ch, 5))


class TestFractionPlatforms:
    def test_chain_exact_rationals(self):
        ch = Chain(
            c=(Fraction(1, 2), Fraction(3, 4)), w=(Fraction(5, 3), Fraction(2, 1))
        )
        s = schedule_chain(ch, 4)
        assert check(s) == []
        assert isinstance(s.makespan, Fraction)

    def test_fraction_matches_scaled_integers(self):
        """Scaling a platform by a rational scales the makespan exactly."""
        ints = Chain(c=(2, 3), w=(3, 5))
        scaled = Chain(
            c=(Fraction(2, 7), Fraction(3, 7)), w=(Fraction(3, 7), Fraction(5, 7))
        )
        for n in (1, 3, 5):
            assert chain_makespan(scaled, n) == Fraction(chain_makespan(ints, n), 7)

    def test_fast_path_on_fractions(self):
        ch = Chain(c=(Fraction(1, 3), Fraction(1, 2)), w=(Fraction(2, 3), Fraction(1, 1)))
        a = schedule_chain(ch, 5)
        b = schedule_chain_fast(ch, 5)
        assert a.to_dict() == b.to_dict()


class TestZeroLatencyMaster:
    """c₁ = 0 models a master that computes (allowed by the escape hatch)."""

    def test_chain_with_computing_master(self):
        ch = Chain(c=(2,), w=(4,)).with_computing_master(3)
        assert ch.c == (0, 2)
        s = schedule_chain(ch, 6)
        assert check(s) == []
        # the "master" (zero-latency first worker) picks up work
        assert s.task_counts().get(1, 0) > 0

    def test_zero_latency_matches_bruteforce(self):
        ch = Chain(c=(0, 2), w=(3, 4))
        for n in (1, 2, 4):
            assert chain_makespan(ch, n) == optimal_makespan(ch, n).makespan

    def test_t_infinity_zero_latency(self):
        ch = Chain(c=(0,), w=(5,))
        assert ch.t_infinity(3) == 0 + 2 * 5 + 5

    def test_executes(self):
        ch = Chain(c=(0, 1), w=(2, 2))
        verify_by_execution(schedule_chain(ch, 4))


class TestScale:
    def test_chain_5000_tasks(self):
        ch = Chain(c=(2, 3, 1), w=(3, 5, 4))
        s = schedule_chain_fast(ch, 5000)
        assert s.n_tasks == 5000
        # spot-check feasibility invariants cheaply: makespan rate near bound
        from repro.analysis.steady_state import chain_steady_state

        thr = chain_steady_state(ch).throughput
        assert 5000 / float(s.makespan) <= float(thr) + 1e-9

    def test_wide_spider_200_tasks(self):
        sp = Spider(
            [Chain(c=(i % 3 + 1,), w=(i % 5 + 1,)) for i in range(12)]
        )
        s = spider_schedule(sp, 200)
        assert s.n_tasks == 200
        assert check(s) == []

    def test_deep_chain_feasibility(self):
        ch = Chain(c=tuple([1] * 40), w=tuple([3] * 40))
        s = schedule_chain_fast(ch, 60)
        assert check(s) == []
