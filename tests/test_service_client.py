"""The hardened service edge: client retries/timeouts against a
misbehaving fake server, per-request deadlines, graceful shutdown.

The fake server speaks real TCP so the client's raw-fd deadline reads and
reconnect-per-retry logic are exercised for real; each accepted
connection consumes the next scripted *behavior*:

* ``"ok"`` — answer every request line properly;
* ``"drop"`` — read one request, then close (clean EOF mid-request);
* ``"stall"`` — read one request, answer nothing (client deadline fires);
* ``"partial"`` — read one request, emit half a JSON line and close;
* ``"overloaded"`` — answer every request with a retriable shed error;
* ``"shed_once"`` — shed the first request, then behave like ``"ok"``.
"""

import asyncio
import json
import socket
import socketserver
import threading

import pytest

from repro.platforms.chain import Chain
from repro.service.engine import ScheduleService, ServiceClosingError
from repro.service.protocol import (
    ServiceClient,
    ServiceError,
    ServiceTimeout,
    handle_request,
)
from repro.service.store import SolutionStore
from repro.solve import Problem


# ---------------------------------------------------------------------------
# The fake server
# ---------------------------------------------------------------------------


class FakeServer:
    """Scripted TCP peer; ``behaviors`` is consumed one per connection
    (the last entry repeats for any further connections)."""

    def __init__(self, behaviors):
        self.behaviors = list(behaviors)
        self.connections = 0
        self._lock = threading.Lock()
        outer = self

        class Handler(socketserver.StreamRequestHandler):
            def handle(self):
                with outer._lock:
                    behavior = outer.behaviors[
                        min(outer.connections, len(outer.behaviors) - 1)
                    ]
                    outer.connections += 1
                while True:
                    line = self.rfile.readline()
                    if not line:
                        return
                    request = json.loads(line)
                    if behavior == "drop":
                        return
                    if behavior == "stall":
                        # hold the connection open, never answer
                        self.rfile.readline()
                        return
                    if behavior == "partial":
                        # a truncated response that still ends in a newline:
                        # framing says "complete line", the JSON is cut off
                        self.wfile.write(b'{"id": "c1", "ok": tr\n')
                        self.wfile.flush()
                        return
                    if behavior in ("overloaded", "shed_once"):
                        shed = {"id": request.get("id"), "ok": False,
                                "error_kind": "overloaded",
                                "error": "fleet is saturated",
                                "retriable": True}
                        self.wfile.write((json.dumps(shed) + "\n").encode())
                        self.wfile.flush()
                        if behavior == "shed_once":
                            behavior = "ok"
                        continue
                    response = {"id": request.get("id"), "ok": True,
                                "pong": True, "protocol": 1}
                    self.wfile.write((json.dumps(response) + "\n").encode())
                    self.wfile.flush()

        self.server = socketserver.ThreadingTCPServer(
            ("127.0.0.1", 0), Handler
        )
        self.server.daemon_threads = True
        self.port = self.server.server_address[1]
        self.thread = threading.Thread(
            target=self.server.serve_forever, daemon=True
        )
        self.thread.start()

    def close(self):
        self.server.shutdown()
        self.server.server_close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


def connect(server, **kw):
    kw.setdefault("backoff", 0.01)
    return ServiceClient.connect("127.0.0.1", server.port, **kw)


# ---------------------------------------------------------------------------
# Client resilience
# ---------------------------------------------------------------------------


class TestClientResilience:
    def test_clean_ping(self):
        with FakeServer(["ok"]) as srv, connect(srv) as client:
            assert client.ping()

    def test_drop_without_retries_raises_connection(self):
        with FakeServer(["drop"]) as srv, connect(srv) as client:
            with pytest.raises(ServiceError) as err:
                client.ping()
            assert err.value.kind == "connection"

    def test_retry_reconnects_after_drop(self):
        with FakeServer(["drop", "ok"]) as srv:
            with connect(srv, retries=1) as client:
                assert client.ping()
            assert srv.connections == 2

    def test_retry_survives_drop_then_stall_then_ok(self):
        with FakeServer(["drop", "stall", "ok"]) as srv:
            with connect(srv, retries=3, timeout=0.2) as client:
                assert client.ping()
            assert srv.connections == 3

    def test_stall_without_retries_raises_timeout(self):
        with FakeServer(["stall"]) as srv:
            with connect(srv, timeout=0.1) as client:
                with pytest.raises(ServiceTimeout):
                    client.ping()

    def test_partial_line_is_a_connection_error_then_retried(self):
        with FakeServer(["partial", "ok"]) as srv:
            with connect(srv) as client:
                with pytest.raises(ServiceError, match="garbled"):
                    client.ping()
            with connect(srv, retries=1) as client:
                assert client.ping()

    def test_non_idempotent_ops_never_retry(self):
        with FakeServer(["drop", "ok"]) as srv:
            with connect(srv, retries=3) as client:
                with pytest.raises(ServiceError):
                    client.request({"op": "shutdown"})
            assert srv.connections == 1  # no reconnect was attempted

    def test_per_request_overrides_beat_client_defaults(self):
        with FakeServer(["drop", "ok"]) as srv:
            with connect(srv, retries=0) as client:
                assert client.request({"op": "ping"}, retries=1)["pong"]
        with FakeServer(["stall"]) as srv:
            with connect(srv, timeout=None) as client:
                with pytest.raises(ServiceTimeout):
                    client.request({"op": "ping"}, timeout=0.1)

    def test_fresh_request_id_per_attempt(self):
        with FakeServer(["drop", "ok"]) as srv:
            with connect(srv, retries=1) as client:
                response = client.request({"op": "ping"})
                assert response["id"] == "c2"  # attempt 2 got a fresh id

    def test_raw_stream_client_cannot_reconnect(self):
        import io

        client = ServiceClient(io.StringIO(""), io.StringIO())
        with pytest.raises(ServiceError, match="cannot reconnect"):
            # EOF -> connection error; the retry then fails loudly on the
            # missing reconnect recipe instead of re-sending into the void
            client.request({"op": "ping"}, retries=2)


# ---------------------------------------------------------------------------
# Retry policy: jitter, last-error surfacing, shed-response handling
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_shed_response_retried_on_same_connection(self):
        with FakeServer(["shed_once"]) as srv:
            with connect(srv, retries=2) as client:
                assert client.ping()
        # an "overloaded" answer means the *server* is healthy — the retry
        # must re-ask on the same connection, not redial
        assert srv.connections == 1

    def test_shed_exhausted_returns_last_shed_response(self):
        with FakeServer(["overloaded"]) as srv:
            with connect(srv, retries=2) as client:
                response = client.request({"op": "ping"})
        assert response["ok"] is False
        assert response["error_kind"] == "overloaded"
        assert response["retriable"] is True
        assert srv.connections == 1

    def test_last_transport_error_surfaced_not_first(self):
        # attempt 1 hits a clean drop (connection), attempt 2 a stall
        # (timeout): the raised error must be the *last* failure
        with FakeServer(["drop", "stall"]) as srv:
            with connect(srv, retries=1, timeout=0.2) as client:
                with pytest.raises(ServiceError) as err:
                    client.ping()
        assert err.value.kind == "timeout"

    def test_fresh_jitter_drawn_every_attempt(self, monkeypatch):
        import random

        sleeps = []
        monkeypatch.setattr("time.sleep", sleeps.append)
        backoff = 0.01
        with FakeServer(["drop", "drop", "ok"]) as srv:
            with connect(srv, retries=2, backoff=backoff) as client:
                client._rng = random.Random(99)
                assert client.ping()

        expected_rng = random.Random(99)
        expected = [
            expected_rng.uniform(0.0, backoff * (2 ** 0)),
            expected_rng.uniform(0.0, backoff * (2 ** 1)),
        ]
        assert sleeps == expected, (
            "each retry must draw a fresh full-jitter delay from the "
            "exponential window, not reuse the first draw"
        )
        for attempt, delay in enumerate(sleeps, start=1):
            assert 0.0 <= delay <= backoff * (2 ** (attempt - 1))


# ---------------------------------------------------------------------------
# Server-side deadlines and shutdown
# ---------------------------------------------------------------------------


class SlowService:
    """Stand-in whose submit() takes as long as told."""

    def __init__(self, delay, request_timeout=None):
        self.delay = delay
        self.request_timeout = request_timeout
        self.timeouts = 0

    async def submit(self, problem):
        await asyncio.sleep(self.delay)
        raise AssertionError("submit completed despite the deadline")


def solve_line(deadline=None):
    from repro.io.json_io import problem_to_dict

    problem = Problem(Chain([2], [3]), "makespan", n=2)
    request = {"id": "r1", "op": "solve", "problem": problem_to_dict(problem)}
    if deadline is not None:
        request["deadline"] = deadline
    return json.dumps(request)


class TestRequestDeadlines:
    def test_service_ceiling_times_out_slow_solves(self):
        service = SlowService(5, request_timeout=0.05)
        response = asyncio.run(handle_request(service, solve_line()))
        assert response["ok"] is False
        assert response["error_kind"] == "timeout"
        assert service.timeouts == 1

    def test_request_deadline_tightens_the_ceiling(self):
        service = SlowService(5, request_timeout=30)
        response = asyncio.run(
            handle_request(service, solve_line(deadline=0.05))
        )
        assert response["error_kind"] == "timeout"

    def test_bogus_deadline_field_is_ignored(self):
        service = ScheduleService(store=SolutionStore(), workers=1)
        try:
            response = asyncio.run(
                handle_request(service, solve_line(deadline="soon"))
            )
            assert response["ok"] is True
        finally:
            service.close()

    def test_fast_solve_beats_its_deadline(self):
        service = ScheduleService(store=SolutionStore(), workers=1,
                                  request_timeout=30)
        try:
            response = asyncio.run(handle_request(service, solve_line()))
            assert response["ok"] is True and not response["cached"]
        finally:
            service.close()

    def test_nonpositive_ceiling_rejected(self):
        with pytest.raises(ValueError, match="request_timeout"):
            ScheduleService(store=SolutionStore(), request_timeout=0)


class TestGracefulShutdown:
    def test_submit_after_begin_shutdown_is_refused(self):
        async def run():
            service = ScheduleService(store=SolutionStore(), workers=1)
            try:
                service.begin_shutdown()
                assert service.closing
                with pytest.raises(ServiceClosingError):
                    await service.submit(Problem(Chain([2], [3]),
                                                 "makespan", n=2))
                assert service.stats()["closing"] is True
            finally:
                service.close()

        asyncio.run(run())

    def test_shutdown_maps_to_shutting_down_kind(self):
        async def run():
            service = ScheduleService(store=SolutionStore(), workers=1)
            try:
                service.begin_shutdown()
                return await handle_request(service, solve_line())
            finally:
                service.close()

        response = asyncio.run(run())
        assert response["ok"] is False
        assert response["error_kind"] == "shutting_down"

    def test_aclose_drains_inflight_solves(self):
        async def run():
            service = ScheduleService(store=SolutionStore(), workers=2)
            problem = Problem(Chain([2, 3], [3, 5]), "makespan", n=30)
            task = asyncio.ensure_future(service.submit(problem))
            await asyncio.sleep(0)  # let the solve enter the executor
            await service.aclose()
            outcome = await task  # the in-flight answer still lands
            assert outcome.solution.makespan > 0
            assert service.closing

        asyncio.run(run())
