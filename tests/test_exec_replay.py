"""The unified execution layer: replay validation, the online solver, and
the mode-keyed registry dispatch.

The centrepiece is the seeded property sweep: every registered offline
solver's `Solution` — chain, star, spider, tree; makespan and deadline —
is replayed through the discrete-event executor, which independently
enforces port serialisation, relay-FIFO forwarding and CPU cadence, and
must reproduce the claimed makespan bit-exactly.
"""

import pytest

from repro.batch import Scenario, run_batch
from repro.core.commvector import CommVector
from repro.core.schedule import TaskAssignment, adapter_for
from repro.core.types import EventBudgetExceeded, SimulationError
from repro.io.json_io import platform_to_dict
from repro.platforms.chain import Chain
from repro.platforms.generators import (
    random_chain,
    random_spider,
    random_star,
    random_tree,
)
from repro.platforms.star import Star
from repro.sim.engine import Simulator
from repro.sim.online import ONLINE_POLICIES
from repro.solve import (
    Problem,
    Solution,
    SolveError,
    ValidationError,
    solve,
    solver_for,
)

#: one generator per platform family — the replay sweep runs all of them.
GENERATORS = {
    "chain": lambda seed: random_chain(4, profile="balanced", seed=seed),
    "star": lambda seed: random_star(5, profile="volunteer", seed=seed),
    "spider": lambda seed: random_spider(3, 3, profile="comm_bound", seed=seed),
    "tree": lambda seed: random_tree(7, profile="cpu_heavy", seed=seed),
}

SEEDS = range(40, 48)


class TestReplayValidation:
    """Satellite: seeded replay property over every registered solver."""

    @pytest.mark.parametrize("family", sorted(GENERATORS))
    @pytest.mark.parametrize("seed", SEEDS)
    def test_makespan_solutions_replay_bit_exact(self, family, seed):
        platform = GENERATORS[family](seed)
        sol = solve(Problem(platform, "makespan", n=9))
        trace = sol.validate()  # raises on any replay violation
        assert trace.makespan == sol.makespan
        assert trace.tasks_completed() == sol.n_tasks == 9

    @pytest.mark.parametrize("family", sorted(GENERATORS))
    @pytest.mark.parametrize("seed", SEEDS)
    def test_deadline_solutions_replay_within_tlim(self, family, seed):
        platform = GENERATORS[family](seed)
        # a horizon generous enough that every family schedules something
        t_lim = 4 * solve(Problem(platform, "makespan", n=4)).makespan
        sol = solve(Problem(platform, "deadline", t_lim=t_lim))
        trace = sol.validate()
        assert trace.makespan == sol.makespan
        assert sol.makespan <= t_lim

    @pytest.mark.parametrize("policy", sorted(ONLINE_POLICIES))
    def test_online_solutions_replay_bit_exact(self, policy):
        platform = random_spider(3, 2, seed=11)
        sol = solve(Problem(platform, "makespan", n=8, mode="online",
                            options={"policy": policy}))
        trace = sol.validate()
        assert trace.makespan == sol.makespan

    def test_replay_returns_fresh_trace(self):
        sol = solve(Problem(random_chain(3, seed=1), "makespan", n=5))
        trace = sol.replay()
        assert trace.makespan == sol.makespan
        assert trace is not sol.trace  # offline solutions had no trace

    def test_validate_rejects_port_conflict(self):
        """A hand-corrupted schedule must not survive replay."""
        star = Star([(2, 3), (2, 5)])
        sol = solve(Problem(star, "makespan", n=4))
        victim = max(sol.schedule.tasks())
        a = sol.schedule.assignments[victim]
        # drag the last task's emission onto the master's busy port
        sol.schedule.assignments[victim] = TaskAssignment(
            a.task, a.processor, a.start, CommVector([0])
        )
        with pytest.raises(ValidationError):
            sol.validate()

    def test_validate_rejects_missed_deadline(self):
        chain = Chain(c=(2,), w=(3,))
        good = solve(Problem(chain, "makespan", n=3))
        lying = Solution(
            Problem(chain, "deadline", t_lim=good.makespan - 1),
            good.schedule, "chain",
        )
        with pytest.raises(ValidationError, match="missed the deadline"):
            lying.validate()

    def test_trace_only_solution_cannot_replay(self):
        sol = solve(Problem(random_star(3, seed=5), "makespan", n=6,
                            mode="online",
                            options={"failures": [{"time": 4, "processor": 1}]}))
        assert sol.schedule is None
        sol.validate()  # trace exclusivity re-check passes
        with pytest.raises(SolveError, match="trace-only"):
            sol.replay()


class TestOnlineSolverDispatch:
    def test_mode_axis_resolves_different_solvers(self):
        spider = random_spider(2, 2, seed=3)
        assert solver_for(spider).name == "spider"
        assert solver_for(spider, "online").name == "online"

    def test_every_platform_family_answers_online(self):
        for family, gen in GENERATORS.items():
            sol = solve(Problem(gen(1), "makespan", n=5, mode="online"))
            assert sol.solver == "online", family
            assert sol.n_tasks == 5

    def test_online_never_beats_offline(self):
        for seed in range(30, 36):
            spider = random_spider(3, 2, seed=seed)
            off = solve(Problem(spider, "makespan", n=10))
            for policy in ONLINE_POLICIES:
                on = solve(Problem(spider, "makespan", n=10, mode="online",
                                   options={"policy": policy}))
                assert on.makespan >= off.makespan

    def test_unknown_policy_rejected(self):
        with pytest.raises(SolveError, match="warp_speed"):
            solve(Problem(random_chain(2, seed=1), "makespan", n=3,
                          mode="online", options={"policy": "warp_speed"}))

    def test_unknown_option_rejected(self):
        with pytest.raises(SolveError, match="bogus"):
            solve(Problem(random_chain(2, seed=1), "makespan", n=3,
                          mode="online", options={"bogus": 1}))

    def test_online_deadline_kind_rejected(self):
        with pytest.raises(SolveError, match="deadline"):
            solve(Problem(random_chain(2, seed=1), "deadline", t_lim=20,
                          mode="online"))

    def test_unknown_mode_rejected(self):
        with pytest.raises(SolveError, match="sideline"):
            Problem(random_chain(2, seed=1), "makespan", n=2, mode="sideline")

    def test_arrivals_flow_through(self):
        star = random_star(3, seed=2)
        burst = solve(Problem(star, "makespan", n=4, mode="online",
                              options={"arrivals": [0, 0, 50, 50]}))
        assert burst.makespan >= 50

    def test_failure_run_reports_reissues(self):
        spider = random_spider(2, 2, seed=8)
        sol = solve(Problem(spider, "makespan", n=12, mode="online",
                            options={"failures": [
                                {"time": 6, "processor": [1, 1]}]}))
        assert sol.stats["completed"] == 12
        assert sol.stats["attempts"] >= 12
        assert (1, 1) not in sol.extra["survivors"]

    def test_malformed_failure_spec_rejected(self):
        with pytest.raises(SolveError, match="time"):
            solve(Problem(random_star(3, seed=2), "makespan", n=4,
                          mode="online", options={"failures": [{"when": 3}]}))


class TestEventBudget:
    """Satellite: configurable max_events with a named overflow error."""

    def _livelock(self, sim):
        def loop(s):
            s.after(1, loop)
        sim.at(0, loop)

    def test_instance_budget(self):
        sim = Simulator(max_events=50)
        self._livelock(sim)
        with pytest.raises(EventBudgetExceeded) as err:
            sim.run()
        assert err.value.max_events == 50
        assert isinstance(err.value, SimulationError)  # old handlers still catch it

    def test_run_override_wins(self):
        sim = Simulator(max_events=10)
        seen = []
        for t in range(20):
            sim.at(t, lambda s: seen.append(s.now))
        sim.run(max_events=100)  # larger per-run budget: completes fine
        assert len(seen) == 20

    def test_invalid_budget_rejected(self):
        with pytest.raises(SimulationError):
            Simulator(max_events=0)

    def test_online_solver_threads_the_option(self):
        with pytest.raises(EventBudgetExceeded):
            solve(Problem(random_chain(3, seed=1), "makespan", n=50,
                          mode="online", options={"max_events": 10}))


class TestAdapterHelpers:
    """Satellite: the deduplicated schedule-key helpers."""

    def test_master_port_per_family(self):
        assert adapter_for(random_chain(3, seed=1)).master_port() == 0
        assert adapter_for(random_star(3, seed=1)).master_port() == "master"
        assert adapter_for(random_spider(2, 2, seed=1)).master_port() == "master"
        tree = random_tree(4, seed=1)
        assert adapter_for(tree).master_port() == 0  # the root

    def test_route_cost_matches_explicit_sum(self):
        for gen in GENERATORS.values():
            adapter = adapter_for(gen(2))
            for proc in adapter.processors():
                assert adapter.route_cost(proc) == sum(
                    adapter.latency(l) for l in adapter.route(proc)
                )

    def test_route_nodes_end_at_the_processor(self):
        adapter = adapter_for(random_spider(2, 3, seed=2))
        for proc in adapter.processors():
            nodes = adapter.route_nodes(proc)
            assert nodes[-1] == proc
            assert len(nodes) == len(adapter.route(proc))


class TestBatchOnlineScenarios:
    def _spider_dict(self, seed=7):
        return platform_to_dict(random_spider(3, 2, seed=seed))

    def test_online_kind_end_to_end(self):
        pdict = self._spider_dict()
        off, on = run_batch([
            Scenario("off", pdict, "makespan", n=8),
            Scenario("on", pdict, "online", n=8,
                     options={"policy": "round_robin"}),
        ])
        assert off.ok and on.ok
        assert on.kind == "online"
        assert on.policy == "round_robin"
        assert on.makespan >= off.makespan
        assert on.n_tasks == 8

    def test_online_kind_needs_n(self):
        from repro.batch.scenarios import BatchError

        with pytest.raises(BatchError, match="online needs n"):
            Scenario("bad", self._spider_dict(), "online")

    def test_online_kind_rejects_tlim(self):
        """Policies have no deadline notion — a t_lim that would be
        silently ignored must fail loudly instead."""
        from repro.batch.scenarios import BatchError

        with pytest.raises(BatchError, match="no t_lim"):
            Scenario("bad", self._spider_dict(), "online", n=5, t_lim=10)

    def test_fault_scenarios_in_batch(self):
        (r,) = run_batch([
            Scenario("faulty", self._spider_dict(), "online", n=10,
                     options={"failures": [{"time": 5, "processor": [1, 1]}]}),
        ])
        assert r.ok
        assert r.n_tasks == 10
        assert r.stats["reissues"] >= 0 and r.stats["attempts"] >= 10

    def test_validate_flag_stamps_results(self):
        pdict = self._spider_dict()
        results = run_batch(
            [Scenario("a", pdict, "makespan", n=5),
             Scenario("b", pdict, "online", n=5)],
            validate=True,
        )
        assert all(r.ok and r.validated for r in results)
        plain = run_batch([Scenario("a", pdict, "makespan", n=5)])
        assert plain[0].validated is None

    def test_validated_roundtrips_through_json(self, tmp_path):
        import json

        from repro.batch import ScenarioResult, save_results

        results = run_batch(
            [Scenario("on", self._spider_dict(), "online", n=4)],
            validate=True,
        )
        payload = json.loads(
            save_results(results, tmp_path / "r.json").read_text()
        )
        row = payload["results"][0]
        assert row["validated"] is True and row["policy"] == "demand_driven"
        back = ScenarioResult.from_dict(row)
        assert back.validated and back.policy == "demand_driven"

    def test_mixed_group_warm_sweep_unaffected_by_online_rows(self):
        """Online scenarios in a spider group must not disturb the
        deadline sweep's warm-cap answers."""
        from repro.core.spider import spider_schedule_deadline

        sp = random_spider(3, 2, seed=4)
        pdict = platform_to_dict(sp)
        scs = [
            Scenario("on", pdict, "online", n=6),
            Scenario("d30", pdict, "deadline", t_lim=30),
            Scenario("d20", pdict, "deadline", t_lim=20),
        ]
        _, d30, d20 = run_batch(scs)
        assert d30.n_tasks == spider_schedule_deadline(sp, 30).n_tasks
        assert d20.n_tasks == spider_schedule_deadline(sp, 20).n_tasks


class TestRegret:
    def test_ratio_at_least_one(self):
        from repro.analysis import regret

        r = regret(random_spider(3, 2, seed=9), 12, "round_robin",
                   validate=True)
        assert r.ratio >= 1.0
        assert r.absolute == r.online_makespan - r.offline_makespan

    def test_table_covers_all_policies(self):
        from repro.analysis import DEFAULT_POLICIES, regret_table

        rows = regret_table(random_star(4, seed=3), 10)
        assert [r.policy for r in rows] == list(DEFAULT_POLICIES)
        assert all(r.ratio >= 1.0 for r in rows)

    def test_failures_cost_extra(self):
        from repro.analysis import regret

        clean = regret(random_spider(3, 2, seed=9), 12)
        faulty = regret(random_spider(3, 2, seed=9), 12,
                        failures=[{"time": 5, "processor": [1, 1]}])
        assert faulty.failures == 1
        assert faulty.online_makespan >= clean.online_makespan


class TestCliOnlineDispatch:
    def test_simulate_routes_through_registry(self, capsys):
        from repro.cli import main

        assert main(["simulate", "--leg", "2/3,3/5", "--leg", "1/4",
                     "-n", "6", "--policy", "bandwidth_centric"]) == 0
        out = capsys.readouterr().out
        assert "policy: bandwidth_centric" in out
        assert "tasks: 6" in out

    def test_batch_executor_flag(self, capsys, tmp_path):
        import json

        from repro.cli import main

        pdict = platform_to_dict(random_spider(3, 2, seed=7))
        path = tmp_path / "scenarios.json"
        path.write_text(json.dumps({
            "schema": 1,
            "scenarios": [
                {"id": "mk", "platform": pdict, "kind": "makespan", "n": 5},
                {"id": "on", "platform": pdict, "kind": "online", "n": 5},
            ],
        }))
        assert main(["batch", "--scenarios", str(path), "--workers", "2",
                     "--executor", "threads", "--validate"]) == 0
        out = capsys.readouterr().out
        assert "2/2 scenarios ok" in out
        assert "replay-validated" in out

    def test_batch_executor_conflicts_with_explicit_mode(self, tmp_path):
        import json

        from repro.cli import main

        path = tmp_path / "scenarios.json"
        path.write_text(json.dumps({
            "schema": 1,
            "scenarios": [{"id": "mk", "kind": "makespan", "n": 2,
                           "platform": platform_to_dict(random_chain(2, seed=1))}],
        }))
        with pytest.raises(SystemExit, match="pick one"):
            main(["batch", "--scenarios", str(path),
                  "--executor", "threads", "--mode", "serial"])

    def test_no_simulate_ladders_left(self):
        """Acceptance guard: the CLI's online verbs contain no direct
        simulator calls — everything dispatches through repro.solve."""
        import inspect

        import repro.cli as cli_mod

        source = inspect.getsource(cli_mod)
        assert "simulate_online(" not in source
        assert "simulate_with_failures(" not in source
