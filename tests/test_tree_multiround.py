"""Property tests for the multi-round spider-cover tree scheduler.

The invariants under test:

* every composed schedule is feasible *on the tree* — all four Definition-1
  conditions, in particular one outgoing send per node at a time and
  hop-by-hop relay timing (conditions 4 and 1);
* every task completes by the deadline (deadline mode);
* the multi-round schedule never places fewer tasks than the single-cover
  heuristic at the same deadline, and never has a larger makespan in
  makespan mode (round 1 *is* the single cover);
* whenever a second round exists it actually reaches workers the first
  round missed (on capacity-gapped trees);
* budgets are hard caps.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.steady_state import spider_steady_state, tree_steady_state
from repro.core.feasibility import check, check_deadline
from repro.core.spider import spider_schedule_deadline
from repro.platforms.generators import random_tree
from repro.platforms.tree import Tree
from repro.trees.heuristic import best_path_cover, tree_schedule_by_cover
from repro.trees.multiround import (
    COVER_STRATEGIES,
    tree_schedule_multiround,
    tree_schedule_multiround_deadline,
)


def _random_tree(seed: int, profile: str = "balanced", lo: int = 4, hi: int = 10) -> Tree:
    rng = random.Random(seed)
    return random_tree(rng.randint(lo, hi), profile=profile, rng=rng)


def _capacity_gap(tree: Tree) -> float:
    """1 − (best single cover rate / tree rate): what covering drops."""
    cover_rate = spider_steady_state(best_path_cover(tree).spider).throughput
    tree_rate = tree_steady_state(tree).throughput
    return 1 - float(cover_rate) / float(tree_rate)


def _gapped_tree(seed: int, min_gap: float = 0.15) -> Tree:
    """A cpu_heavy random tree whose single cover drops >= min_gap capacity."""
    probe = seed
    while True:
        tree = _random_tree(probe, profile="cpu_heavy", lo=9, hi=13)
        if _capacity_gap(tree) >= min_gap:
            return tree
        probe += 1


class TestFeasibility:
    @given(st.integers(0, 200), st.sampled_from(["balanced", "cpu_bound", "cpu_heavy"]))
    @settings(max_examples=30, deadline=None)
    def test_deadline_schedule_is_feasible_on_the_tree(self, seed, profile):
        tree = _random_tree(seed, profile)
        t_lim = 3 * sum(tree.work(v) for v in tree.workers) // tree.p
        result = tree_schedule_multiround_deadline(tree, t_lim)
        assert check(result.schedule) == []
        assert check_deadline(result.schedule, t_lim) == []

    @given(st.integers(0, 200), st.integers(1, 25))
    @settings(max_examples=30, deadline=None)
    def test_makespan_schedule_is_feasible(self, seed, n):
        tree = _random_tree(seed)
        result = tree_schedule_multiround(tree, n)
        assert check(result.schedule) == []
        assert result.n_tasks == n

    def test_rounds_are_port_exclusive_even_when_they_interleave(self):
        """A multi-round composition must keep every send port serial —
        the checker's condition 4 on an instance known to use 4+ rounds."""
        tree = _gapped_tree(310)
        t_lim = 2 * tree_schedule_by_cover(tree, 24).makespan
        result = tree_schedule_multiround_deadline(tree, t_lim)
        assert len(result.rounds) >= 2
        assert check(result.schedule) == []


class TestNeverLoses:
    @given(st.integers(0, 300), st.sampled_from(["balanced", "cpu_bound", "cpu_heavy"]))
    @settings(max_examples=30, deadline=None)
    def test_deadline_task_count_at_least_single_cover(self, seed, profile):
        tree = _random_tree(seed, profile)
        cover = best_path_cover(tree)
        t_lim = 2 * sum(tree.work(v) for v in tree.workers) // tree.p
        single = spider_schedule_deadline(cover.spider, t_lim).n_tasks
        multi = tree_schedule_multiround_deadline(tree, t_lim)
        assert multi.n_tasks >= single

    @given(st.integers(0, 300), st.integers(2, 20))
    @settings(max_examples=20, deadline=None)
    def test_makespan_at_most_single_cover(self, seed, n):
        tree = _random_tree(seed)
        single = tree_schedule_by_cover(tree, n).makespan
        multi = tree_schedule_multiround(tree, n)
        assert multi.makespan <= single

    def test_round_one_is_bit_identical_to_single_cover(self):
        tree = _random_tree(7, "cpu_heavy")
        t_lim = 2 * tree_schedule_by_cover(tree, 12).makespan
        single = spider_schedule_deadline(best_path_cover(tree).spider, t_lim)
        multi = tree_schedule_multiround_deadline(tree, t_lim, max_rounds=1)
        assert multi.n_tasks == single.n_tasks
        assert multi.makespan == single.schedule.makespan


class TestUncoveredWorkerInvariants:
    """Round 2+ must actually reach workers round 1 missed."""

    @pytest.mark.parametrize("seed", [303, 304, 305, 310, 316, 320])
    def test_later_rounds_reach_workers_missed_by_round_one(self, seed):
        tree = _gapped_tree(seed)
        t_lim = 2 * tree_schedule_by_cover(tree, 24).makespan
        result = tree_schedule_multiround_deadline(tree, t_lim)
        assert len(result.rounds) >= 2, "gapped trees must trigger re-covering"
        round1_workers = set(result.rounds[0].new_workers)
        later = {w for r in result.rounds[1:] for w in r.new_workers}
        assert later, "rounds 2+ must serve at least one fresh worker"
        assert later.isdisjoint(round1_workers)
        uncovered = {v for v in tree.workers} - round1_workers
        assert later <= uncovered

    def test_coverage_grows_monotonically_with_round_budget(self):
        tree = _gapped_tree(310)
        t_lim = 2 * tree_schedule_by_cover(tree, 24).makespan
        coverages = [
            tree_schedule_multiround_deadline(tree, t_lim, max_rounds=k).coverage
            for k in (1, 2, 4, 8)
        ]
        assert all(a <= b for a, b in zip(coverages, coverages[1:]))
        assert coverages[-1] > coverages[0]

    def test_round_reports_match_schedule(self):
        tree = _gapped_tree(316)
        t_lim = 2 * tree_schedule_by_cover(tree, 24).makespan
        result = tree_schedule_multiround_deadline(tree, t_lim)
        assert sum(r.n_tasks for r in result.rounds) == result.n_tasks
        reported = {w for r in result.rounds for w in r.new_workers}
        assert reported == result.served_workers
        assert max(r.completion for r in result.rounds) == result.makespan


class TestBudgetsAndOptions:
    @given(st.integers(0, 100), st.integers(1, 10))
    @settings(max_examples=20, deadline=None)
    def test_deadline_budget_is_a_hard_cap(self, seed, n):
        tree = _random_tree(seed, "cpu_heavy")
        t_lim = 2 * sum(tree.work(v) for v in tree.workers) // tree.p
        result = tree_schedule_multiround_deadline(tree, t_lim, n)
        assert result.n_tasks <= n

    def test_unknown_strategy_rejected(self):
        tree = _random_tree(1)
        with pytest.raises(Exception, match="strategy"):
            tree_schedule_multiround_deadline(tree, 10, cover_strategy="mystery")
        with pytest.raises(Exception, match="strategy"):
            tree_schedule_multiround(tree, 3, residual_strategy="mystery")

    @pytest.mark.parametrize("strategy", sorted(COVER_STRATEGIES))
    def test_all_strategies_produce_feasible_schedules(self, strategy):
        tree = _gapped_tree(304)
        t_lim = 2 * tree_schedule_by_cover(tree, 18).makespan
        result = tree_schedule_multiround_deadline(
            tree, t_lim, cover_strategy=strategy, residual_strategy=strategy
        )
        assert check(result.schedule) == []
        assert result.n_tasks > 0
