"""Tests of the batch scenario engine (:mod:`repro.batch`)."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import (
    BatchRunner,
    Scenario,
    ScenarioResult,
    load_scenarios,
    run_batch,
    save_results,
    scenarios_from_dict,
)
from repro.batch.scenarios import BatchError
from repro.core.chain import chain_makespan
from repro.core.spider import spider_schedule_deadline, spider_makespan
from repro.io.json_io import platform_to_dict
from repro.platforms.generators import random_chain, random_spider, random_star

from conftest import spiders


def _spider_dict(seed=1):
    return platform_to_dict(random_spider(3, 3, seed=seed))


class TestScenarioRecords:
    def test_roundtrip(self):
        sc = Scenario("s1", _spider_dict(), "deadline", n=5, t_lim=20)
        assert Scenario.from_dict(sc.to_dict()) == sc

    def test_makespan_needs_n(self):
        with pytest.raises(BatchError):
            Scenario("bad", _spider_dict(), "makespan")

    def test_deadline_needs_tlim(self):
        with pytest.raises(BatchError):
            Scenario("bad", _spider_dict(), "deadline")

    def test_unknown_kind_rejected(self):
        with pytest.raises(BatchError):
            Scenario("bad", _spider_dict(), "steady")

    def test_payload_parsing(self):
        payload = {
            "schema": 1,
            "scenarios": [
                {"id": "a", "platform": _spider_dict(), "kind": "makespan", "n": 3}
            ],
        }
        (sc,) = scenarios_from_dict(payload)
        assert sc.id == "a" and sc.n == 3

    def test_payload_without_list_rejected(self):
        with pytest.raises(BatchError):
            scenarios_from_dict({"schema": 1})


class TestRunnerCorrectness:
    def test_results_keep_input_order(self):
        p1, p2 = _spider_dict(1), _spider_dict(2)
        scs = [
            Scenario("a", p1, "deadline", t_lim=10),
            Scenario("b", p2, "makespan", n=3),
            Scenario("c", p1, "deadline", t_lim=20),
            Scenario("d", p1, "makespan", n=4),
        ]
        results = run_batch(scs)
        assert [r.scenario_id for r in results] == ["a", "b", "c", "d"]

    def test_matches_direct_solves(self):
        sp = random_spider(3, 3, seed=9)
        ch = random_chain(4, seed=9)
        scs = [
            Scenario("sp", platform_to_dict(sp), "makespan", n=7),
            Scenario("ch", platform_to_dict(ch), "makespan", n=7),
            Scenario("sp-d", platform_to_dict(sp), "deadline", t_lim=25),
        ]
        sp_r, ch_r, spd_r = run_batch(scs)
        assert sp_r.makespan == spider_makespan(sp, 7)
        assert ch_r.makespan == chain_makespan(ch, 7)
        assert spd_r.n_tasks == spider_schedule_deadline(sp, 25).n_tasks

    @given(spiders(max_legs=3, max_depth=2), st.lists(st.integers(0, 30),
                                                      min_size=1, max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_warm_deadline_sweep_matches_cold_runs(self, sp, t_lims):
        """The descending-Tlim warm sweep must answer exactly like isolated
        cold runs — warm caps are a pure optimisation."""
        pdict = platform_to_dict(sp)
        scs = [
            Scenario(f"t{i}", pdict, "deadline", t_lim=t)
            for i, t in enumerate(t_lims)
        ]
        results = run_batch(scs)
        for t, r in zip(t_lims, results):
            cold = spider_schedule_deadline(sp, t)
            assert r.ok and r.n_tasks == cold.n_tasks
            assert r.makespan == cold.schedule.makespan

    def test_budgeted_and_unbudgeted_mix(self):
        """A budgeted scenario's caps must not clip a later unbudgeted one."""
        sp = random_spider(3, 2, seed=4)
        pdict = platform_to_dict(sp)
        scs = [
            Scenario("big", pdict, "deadline", t_lim=30, n=2),
            Scenario("small-unbounded", pdict, "deadline", t_lim=25),
        ]
        _, unbounded = run_batch(scs)
        assert unbounded.n_tasks == spider_schedule_deadline(sp, 25).n_tasks

    def test_star_scenarios(self):
        star = random_star(5, seed=3)
        scs = [
            Scenario("mk", platform_to_dict(star), "makespan", n=6),
            Scenario("dl", platform_to_dict(star), "deadline", t_lim=15),
        ]
        mk, dl = run_batch(scs)
        assert mk.ok and mk.n_tasks == 6
        assert dl.ok and dl.makespan <= 15

    def test_bad_scenario_does_not_sink_batch(self):
        pdict = _spider_dict()
        scs = [
            Scenario("good", pdict, "makespan", n=2),
            Scenario("bad", {"kind": "spider", "legs": []}, "makespan", n=2),
        ]
        good, bad = run_batch(scs)
        assert good.ok
        assert not bad.ok and bad.error and "spider" in bad.error

    def test_stats_surface_counters(self):
        (r,) = run_batch([Scenario("s", _spider_dict(), "makespan", n=6)])
        assert r.stats["probes"] >= 1
        assert r.stats["alloc_structure_ops"] > 0
        assert r.wall_s > 0


class TestRunnerModes:
    def _scenarios(self):
        return [
            Scenario(f"s{seed}-{t}", _spider_dict(seed), "deadline", t_lim=t)
            for seed in (1, 2, 3)
            for t in (24, 12, 6)
        ]

    def test_thread_pool_matches_serial(self):
        scs = self._scenarios()
        serial = run_batch(scs, workers=1)
        threaded = run_batch(scs, workers=3, mode="thread")
        assert [(r.scenario_id, r.n_tasks) for r in serial] == [
            (r.scenario_id, r.n_tasks) for r in threaded
        ]

    def test_process_pool_matches_serial(self):
        scs = self._scenarios()
        serial = run_batch(scs, workers=1)
        procs = run_batch(scs, workers=2, mode="process")
        assert [(r.scenario_id, r.n_tasks) for r in serial] == [
            (r.scenario_id, r.n_tasks) for r in procs
        ]

    def test_unknown_mode_rejected(self):
        with pytest.raises(BatchError):
            BatchRunner(workers=4, mode="quantum").run(self._scenarios())

    def test_unknown_mode_rejected_even_when_serial(self):
        """Typos must not silently degrade to serial at workers=1."""
        with pytest.raises(BatchError):
            BatchRunner(workers=1, mode="processs").run(self._scenarios())

    def test_empty_batch_with_workers(self):
        assert run_batch([], workers=4, mode="thread") == []

    def test_single_platform_group_is_split_across_workers(self):
        """A one-platform sweep must still saturate the pool: the group is
        chunked (losing only cross-chunk warm caps), answers unchanged."""
        from repro.batch.runner import _split_for_workers

        pdict = _spider_dict(5)
        scs = [
            Scenario(f"t{t}", pdict, "deadline", t_lim=t)
            for t in range(30, 2, -3)
        ]
        units = _split_for_workers([list(enumerate(scs))], workers=4)
        assert len(units) == 4
        assert sorted(i for u in units for i, _ in u) == list(range(len(scs)))
        serial = run_batch(scs, workers=1)
        pooled = run_batch(scs, workers=4, mode="thread")
        assert [(r.scenario_id, r.n_tasks, r.makespan) for r in serial] == [
            (r.scenario_id, r.n_tasks, r.makespan) for r in pooled
        ]


class TestObsAcrossExecutors:
    """Worker-side metrics/spans must land in the parent registry."""

    def _scenarios(self):
        return [
            Scenario(f"s{seed}", _spider_dict(seed), "makespan", n=8)
            for seed in (1, 2, 3, 4)
        ]

    def _dispatches(self):
        from repro.obs import metrics as obs_metrics

        counters = obs_metrics.snapshot()["counters"]
        return sum(
            v for k, v in counters.items() if k.startswith("solve.dispatch")
        )

    def test_process_pool_merges_worker_metrics(self):
        from repro.obs import metrics as obs_metrics

        scs = self._scenarios()
        kernel_before = obs_metrics.counter(
            "solve_kernel.kernel_solves"
        ).value
        dispatch_before = self._dispatches()
        results = run_batch(scs, workers=2, mode="process")
        assert all(r.ok for r in results)
        # the solves ran in pool workers, yet both the dispatch counters
        # and the kernel-stat family advanced in *this* process
        assert self._dispatches() == dispatch_before + len(scs)
        assert (
            obs_metrics.counter("solve_kernel.kernel_solves").value
            >= kernel_before + len(scs)
        )

    def test_process_pool_ships_worker_spans(self):
        from repro.obs import tracing as obs_tracing

        prev = obs_tracing.set_tracing(True)
        obs_tracing.clear_spans()
        try:
            run_batch(self._scenarios(), workers=2, mode="process")
            spans = obs_tracing.take_spans()
        finally:
            obs_tracing.set_tracing(prev)
            obs_tracing.clear_spans()
        solve_spans = [s for s in spans if s["name"] == "solve"]
        assert len(solve_spans) >= 4
        # every solve ran in a pool worker, so every span carries a
        # foreign pid — proof they crossed the process boundary
        import os

        assert all(s["pid"] != os.getpid() for s in solve_spans)

    def test_thread_pool_counts_once_per_scenario(self):
        before = self._dispatches()
        run_batch(self._scenarios(), workers=3, mode="thread")
        assert self._dispatches() == before + 4

    def test_serial_counts_once_per_scenario(self):
        before = self._dispatches()
        run_batch(self._scenarios(), workers=1)
        assert self._dispatches() == before + 4


class TestSerialisation:
    def test_results_roundtrip(self, tmp_path):
        results = run_batch(
            [Scenario("s", _spider_dict(), "deadline", t_lim=18)]
        )
        path = save_results(results, tmp_path / "res.json")
        payload = json.loads(path.read_text())
        assert payload["schema"] == 1
        back = [ScenarioResult.from_dict(d) for d in payload["results"]]
        assert back[0].scenario_id == "s"
        assert back[0].n_tasks == results[0].n_tasks

    def test_scenario_file_loading(self, tmp_path):
        path = tmp_path / "scen.json"
        path.write_text(json.dumps({
            "schema": 1,
            "scenarios": [
                {"id": "x", "platform": _spider_dict(), "kind": "makespan", "n": 2}
            ],
        }))
        (sc,) = load_scenarios(path)
        assert sc.id == "x"


class TestTreeScenarios:
    """kind: "tree" platforms end-to-end through the registry dispatch."""

    def _tree_dict(self, seed=310):
        from repro.io.json_io import platform_to_dict
        from repro.platforms.generators import random_tree

        return platform_to_dict(random_tree(9, profile="cpu_heavy", seed=seed))

    def test_tree_deadline_end_to_end(self):
        (r,) = run_batch([
            Scenario("t", self._tree_dict(), "deadline", t_lim=90),
        ])
        assert r.ok and r.n_tasks > 0 and r.makespan <= 90
        assert r.rounds >= 1
        assert 0 < r.coverage <= 1

    def test_tree_makespan_end_to_end(self):
        (r,) = run_batch([
            Scenario("t", self._tree_dict(), "makespan", n=12),
        ])
        assert r.ok and r.n_tasks == 12

    def test_tree_options_flow_through(self):
        pdict = self._tree_dict()
        single, multi = run_batch([
            Scenario("single", pdict, "deadline", t_lim=120,
                     options={"max_rounds": 1}),
            Scenario("multi", pdict, "deadline", t_lim=120),
        ])
        assert single.ok and multi.ok
        assert single.rounds == 1
        assert multi.n_tasks >= single.n_tasks

    def test_tree_results_serialise_rounds_and_coverage(self, tmp_path):
        import json

        results = run_batch([
            Scenario("t", self._tree_dict(), "deadline", t_lim=90),
        ])
        payload = json.loads(save_results(results, tmp_path / "r.json").read_text())
        row = payload["results"][0]
        assert row["rounds"] >= 1 and 0 < row["coverage"] <= 1
        back = ScenarioResult.from_dict(row)
        assert back.rounds == results[0].rounds
        assert back.coverage == results[0].coverage

    def test_unknown_platform_kind_is_a_clear_batch_error(self):
        with pytest.raises(BatchError, match="ring"):
            Scenario("bad", {"kind": "ring", "nodes": 3}, "makespan", n=2)

    def test_unclaimed_platform_type_reports_no_solver(self, monkeypatch):
        """If no registered solver claims the platform, the scenario fails
        with an error naming the registered solvers, without sinking the
        batch."""
        from repro.platforms.tree import Tree
        from repro.solve import registry

        monkeypatch.setitem(
            registry.__dict__, "_REGISTRY",
            {k: v for k, v in registry._REGISTRY.items() if k[1] is not Tree},
        )
        good_dict = _spider_dict()
        bad, good = run_batch([
            Scenario("bad", self._tree_dict(), "makespan", n=2),
            Scenario("good", good_dict, "makespan", n=2),
        ])
        assert good.ok
        assert not bad.ok and "no registered solver" in bad.error

    def test_bad_tree_option_fails_that_scenario_only(self):
        pdict = self._tree_dict()
        bad, good = run_batch([
            Scenario("bad", pdict, "makespan", n=2, options={"wat": 1}),
            Scenario("good", pdict, "makespan", n=2),
        ])
        assert not bad.ok and "wat" in bad.error
        assert good.ok


class TestCachedBatch:
    """run_batch(cache=...): offline scenarios served from the store."""

    def _scenarios(self):
        from repro.platforms.chain import Chain
        from repro.platforms.spider import Spider

        legs = [Chain([2, 3], [3, 5]), Chain([1], [4])]
        a = platform_to_dict(Spider(legs))
        b = platform_to_dict(Spider(legs[::-1]))  # relabeled isomorph
        return [
            Scenario("a-mk", a, "makespan", n=8),
            Scenario("b-mk", b, "makespan", n=8),
            Scenario("a-dl", a, "deadline", t_lim=30),
            Scenario("on", a, "online", n=4,
                     options={"policy": "round_robin"}),
        ]

    def test_live_store_serial(self):
        from repro.service import SolutionStore

        store = SolutionStore()
        results = run_batch(self._scenarios(), cache=store, validate=True)
        by_id = {r.scenario_id: r for r in results}
        assert all(r.ok for r in results)
        # the relabeled spider is a hit; answers agree bit-exactly
        assert by_id["a-mk"].cached is False
        assert by_id["b-mk"].cached is True
        assert by_id["b-mk"].makespan == by_id["a-mk"].makespan
        # online scenarios never consult the cache
        assert by_id["on"].cached is None
        assert store.stats.writes == 2  # a-mk + a-dl

    def test_results_identical_with_and_without_cache(self):
        from repro.service import SolutionStore

        scenarios = self._scenarios()[:3]  # offline only (online re-runs sim)
        plain = run_batch(scenarios)
        cached = run_batch(scenarios, cache=SolutionStore())
        for p, c in zip(plain, cached):
            assert (p.scenario_id, p.makespan, p.n_tasks) == (
                c.scenario_id, c.makespan, c.n_tasks
            )

    def test_path_cache_shared_across_runs(self, tmp_path):
        path = tmp_path / "batch.sqlite"
        first = run_batch(self._scenarios(), cache=path)
        second = run_batch(self._scenarios(), cache=path)
        assert sum(bool(r.cached) for r in first) == 1
        assert sum(bool(r.cached) for r in second) == 3  # all offline rows
        assert all(r.ok for r in first + second)

    def test_process_pool_rejects_live_store(self):
        from repro.service import SolutionStore

        runner = BatchRunner(workers=2, mode="process",
                             cache=SolutionStore())
        with pytest.raises(BatchError, match="store \\*path\\*"):
            runner.run(self._scenarios())

    def test_process_pool_accepts_path(self, tmp_path):
        results = run_batch(self._scenarios(), workers=2, mode="process",
                            cache=str(tmp_path / "proc.sqlite"))
        assert all(r.ok for r in results)

    def test_cached_flag_roundtrips_results_json(self, tmp_path):
        from repro.service import SolutionStore

        results = run_batch(self._scenarios(), cache=SolutionStore())
        path = save_results(results, tmp_path / "r.json")
        loaded = json.loads(path.read_text())["results"]
        by_id = {r["scenario_id"]: r for r in loaded}
        assert by_id["b-mk"]["cached"] is True
        assert "cached" not in by_id["on"]
        back = [ScenarioResult.from_dict(r) for r in loaded]
        assert [r.cached for r in back] == [r.cached for r in results]
