"""Every example script must run clean as a subprocess (user-facing smoke)."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

_REPO = Path(__file__).resolve().parents[1]
EXAMPLES = sorted((_REPO / "examples").glob("*.py"))


def _env_with_src() -> dict[str, str]:
    """Subprocess env whose PYTHONPATH reaches ``src`` from any cwd.

    The tier-1 command exports a *relative* ``PYTHONPATH=src``, which stops
    resolving once the example runs from a scratch directory — so rebuild it
    with the absolute path."""
    env = dict(os.environ)
    extra = str(_REPO / "src")
    prev = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = extra + (os.pathsep + prev if prev else "")
    return env


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(script, tmp_path):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=180,
        cwd=tmp_path,  # artefacts (svg/json) land in the scratch dir
        env=_env_with_src(),
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must narrate what they do"


def test_example_inventory():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3, "the paper repro ships at least three examples"


def test_quickstart_prints_paper_numbers():
    script = next(p for p in EXAMPLES if p.stem == "quickstart")
    out = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=60,
        env=_env_with_src(),
    ).stdout
    assert "14" in out  # the paper's makespan
