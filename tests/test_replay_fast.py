"""The compiled replay kernel: differential equivalence with the
event-driven executor, the compile cache, and the engine escape hatch.

The acceptance property of this PR: for every registered solver and for
random platforms, ``sim.replay_fast`` and ``sim.executor`` must agree on
accept/reject, on the emitted trace (bit-for-bit: same event order, same
busy intervals) and on the makespan — including mutated/corrupted
schedules, which must be *rejected* by both.
"""

import copy

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.commvector import CommVector
from repro.core.compiled import (
    CompileError,
    CompiledPlatform,
    clear_compile_cache,
    compile_platform,
    compile_stats,
)
from repro.core.schedule import (
    PlatformAdapter,
    Schedule,
    TaskAssignment,
    adapter_for,
)
from repro.core.types import SimulationError
from repro.platforms.generators import (
    random_chain,
    random_spider,
    random_star,
    random_tree,
)
from repro.sim.executor import execute, verify_by_execution
from repro.sim.online import ONLINE_POLICIES
from repro.sim.replay_fast import (
    ENGINES,
    execute_fast,
    replay_schedule,
    resolve_engine,
    verify_fast,
    verify_schedule,
)
from repro.solve import Problem, ValidationError, solve

GENERATORS = {
    "chain": lambda seed: random_chain(5, profile="balanced", seed=seed),
    "star": lambda seed: random_star(6, profile="volunteer", seed=seed),
    "spider": lambda seed: random_spider(3, 3, profile="comm_bound", seed=seed),
    "tree": lambda seed: random_tree(8, profile="cpu_heavy", seed=seed),
}


def outcome(fn, schedule):
    """(\"ok\", trace) when the engine accepts, (\"err\", type) when not."""
    try:
        return "ok", fn(schedule)
    except SimulationError as exc:
        return "err", type(exc)


def assert_traces_identical(t1, t2):
    assert len(t1.events) == len(t2.events)
    assert t1.events == t2.events
    for a, b in zip(t1.events, t2.events):
        assert a.info == b.info  # info is excluded from Event.__eq__
    assert t1.busy == t2.busy
    assert t1.makespan == t2.makespan


class TestDifferentialAccept:
    """Accepted schedules: every registered solver, all platform families."""

    @pytest.mark.parametrize("family", sorted(GENERATORS))
    @pytest.mark.parametrize("seed", range(60, 66))
    def test_makespan_solutions_bit_identical(self, family, seed):
        sol = solve(Problem(GENERATORS[family](seed), "makespan", n=9))
        assert_traces_identical(execute(sol.schedule), execute_fast(sol.schedule))

    @pytest.mark.parametrize("family", sorted(GENERATORS))
    @pytest.mark.parametrize("seed", range(60, 64))
    def test_deadline_solutions_bit_identical(self, family, seed):
        platform = GENERATORS[family](seed)
        t_lim = 3 * solve(Problem(platform, "makespan", n=4)).makespan
        sol = solve(Problem(platform, "deadline", t_lim=t_lim))
        if sol.schedule.n_tasks == 0:
            pytest.skip("empty schedule at this deadline")
        assert_traces_identical(execute(sol.schedule), execute_fast(sol.schedule))

    @pytest.mark.parametrize("policy", sorted(ONLINE_POLICIES))
    def test_online_solutions_bit_identical(self, policy):
        sol = solve(Problem(random_spider(3, 2, seed=13), "makespan", n=8,
                            mode="online", options={"policy": policy}))
        assert_traces_identical(execute(sol.schedule), execute_fast(sol.schedule))

    def test_verify_matches_verify_by_execution(self):
        sol = solve(Problem(random_tree(7, seed=3), "makespan", n=7))
        assert_traces_identical(
            verify_by_execution(sol.schedule), verify_fast(sol.schedule)
        )

    def test_empty_schedule(self):
        sched = Schedule(random_chain(3, seed=1))
        assert_traces_identical(execute(sched), execute_fast(sched))

    @pytest.mark.parametrize("n", [1, 4, 9])
    def test_zero_latency_links_bit_identical(self, n):
        """The computing-master hatch (first link c=0) makes SEND_END land
        at the same instant as its own SEND_START — the executor emits the
        start first (the end is only scheduled once the start pops), and
        the reconstruction must preserve that order."""
        from repro.platforms.chain import Chain

        chain = Chain([1, 2], [2, 3]).with_computing_master(2)
        sol = solve(Problem(chain, "makespan", n=n))
        assert_traces_identical(execute(sol.schedule), execute_fast(sol.schedule))


def _mutate(schedule, mutation, task, delta):
    """Apply one corruption in place (bypassing construction checks, the
    way a buggy solver would)."""
    tasks = schedule.tasks()
    victim = tasks[task % len(tasks)]
    a = schedule.assignments[victim]
    times = list(a.comms.times)
    if mutation == "early_emit":
        times[0] = max(0, times[0] - delta)
    elif mutation == "negative_emit":
        times[-1] = -delta
    elif mutation == "swap_hops" and len(times) > 1:
        times[0], times[-1] = times[-1], times[0]
    elif mutation == "early_start":
        schedule.assignments[victim] = TaskAssignment(
            a.task, a.processor, max(0, a.start - delta), a.comms
        )
        return
    elif mutation == "negative_start":
        schedule.assignments[victim] = TaskAssignment(
            a.task, a.processor, -delta, a.comms
        )
        return
    elif mutation == "truncate_comms" and len(times) > 1:
        times = times[:-1]
    else:  # mutation not applicable to this shape: nudge the emission
        times[0] = times[0] + delta
    schedule.assignments[victim] = TaskAssignment(
        a.task, a.processor, a.start, CommVector(times)
    )


class TestDifferentialReject:
    """Corrupted schedules: both engines must agree on accept/reject, and
    still on the trace whenever the mutation happens to stay legal."""

    MUTATIONS = ("early_emit", "negative_emit", "swap_hops", "early_start",
                 "negative_start", "truncate_comms")

    @settings(max_examples=60, deadline=None)
    @given(
        family=st.sampled_from(sorted(GENERATORS)),
        seed=st.integers(0, 10_000),
        n=st.integers(2, 10),
        mutation=st.sampled_from(MUTATIONS),
        task=st.integers(0, 9),
        delta=st.integers(1, 7),
    )
    def test_engines_agree(self, family, seed, n, mutation, task, delta):
        sol = solve(Problem(GENERATORS[family](seed), "makespan", n=n))
        schedule = copy.deepcopy(sol.schedule)
        _mutate(schedule, mutation, task, delta)
        kind_event, got_event = outcome(execute, schedule)
        kind_fast, got_fast = outcome(execute_fast, schedule)
        assert kind_event == kind_fast, (
            f"engines disagree on accept/reject: event={kind_event} "
            f"({got_event}), compiled={kind_fast} ({got_fast})"
        )
        if kind_event == "ok":
            assert_traces_identical(got_event, got_fast)

    @pytest.mark.parametrize("mutation", MUTATIONS)
    def test_each_mutation_family_rejected_identically(self, mutation):
        """A deterministic rejection per mutation kind (the hypothesis
        sweep above may not hit a rejecting example for each)."""
        sol = solve(Problem(random_spider(3, 3, seed=5), "makespan", n=8))
        schedule = copy.deepcopy(sol.schedule)
        # aggressive parameters so every mutation actually corrupts
        _mutate(schedule, mutation, 1, 5)
        kind_event, _ = outcome(execute, schedule)
        kind_fast, _ = outcome(execute_fast, schedule)
        assert kind_event == kind_fast

    def test_validate_rejects_through_compiled_engine(self):
        sol = solve(Problem(random_star(4, seed=2), "makespan", n=6))
        _mutate(sol.schedule, "early_emit", 2, 5)
        with pytest.raises(ValidationError):
            sol.validate(engine="compiled")
        with pytest.raises(ValidationError):
            sol.validate(engine="event")


class TestCompileCache:
    def test_isomorphs_share_one_core(self):
        clear_compile_cache()
        legs = [random_chain(3, seed=s) for s in (1, 2, 3)]
        from repro.platforms.spider import Spider

        a = Spider(legs)
        b = Spider(legs[::-1])  # relabeled isomorph
        ca, cb = compile_platform(a), compile_platform(b)
        stats = compile_stats()
        assert stats["core_misses"] == 1 and stats["core_hits"] == 1
        assert ca.fingerprint == cb.fingerprint
        # numeric arrays are literally shared; key tables are rebound
        assert ca.works is cb.works and ca.route_links is cb.route_links
        assert ca.procs != cb.procs

    def test_per_object_memo(self):
        platform = random_tree(6, seed=9)
        assert compile_platform(platform) is compile_platform(platform)

    def test_clear_invalidates_per_object_memo(self):
        platform = random_star(3, seed=4)
        first = compile_platform(platform)
        clear_compile_cache()
        second = compile_platform(platform)  # must recompile, not serve stale
        assert second is not first
        assert compile_stats()["core_misses"] == 1

    def test_compiled_arrays_match_adapter(self):
        for family, gen in GENERATORS.items():
            platform = gen(4)
            adapter = adapter_for(platform)
            cp = compile_platform(platform)
            for i, proc in enumerate(cp.procs):
                assert cp.works[i] == adapter.work(proc), family
                assert cp.route_cost[i] == adapter.route_cost(proc), family
                route = adapter.route(proc)
                assert [cp.link_keys[l] for l in cp.route_of(i)] == route
                assert [cp.port_keys[cp.sender_port[l]]
                        for l in cp.route_of(i)] == [
                    adapter.sender(link) for link in route
                ]
            assert cp.port_keys[0] == adapter.master_port()

    def test_uncanonicalisable_platform_compiles_directly(self):
        class FakePlatform:
            pass

        class FakeAdapter(PlatformAdapter):
            def __init__(self):
                self.platform = FakePlatform()

            def processors(self):
                return [1, 2]

            def work(self, proc):
                return 3

            def latency(self, link):
                return 2

            def route(self, proc):
                return [proc]

            def sender(self, link):
                return "hub"

            def receiver(self, link):
                return link

        adapter = FakeAdapter()
        clear_compile_cache()
        cp = compile_platform(adapter.platform, adapter)
        assert cp.fingerprint is None
        assert compile_stats()["direct"] == 1
        assert cp.route_cost == (2, 2)

    def test_unflattenable_adapter_raises_compile_error(self):
        class WeirdAdapter(PlatformAdapter):
            platform = object()

            def processors(self):
                return [1]

            def work(self, proc):
                return 1

            def latency(self, link):
                return 1

            def route(self, proc):
                return ["not-a-proc"]

            def sender(self, link):
                return "hub"

            def receiver(self, link):
                return "not-a-proc"

        with pytest.raises(CompileError):
            compile_platform(WeirdAdapter.platform, WeirdAdapter())


class TestEngineEscapeHatch:
    def test_resolve_engine(self):
        assert resolve_engine(None) == "compiled"
        assert resolve_engine("event") == "event"
        with pytest.raises(SimulationError, match="warp"):
            resolve_engine("warp")

    def test_validate_engine_param(self):
        sol = solve(Problem(random_chain(3, seed=1), "makespan", n=5))
        t_compiled = sol.validate()  # default: compiled
        t_event = sol.validate(engine="event")
        assert t_compiled.makespan == t_event.makespan
        assert t_compiled.events == t_event.events
        # a typo'd engine is a usage error, not the solver's fault
        with pytest.raises(SimulationError, match="warp"):
            sol.validate(engine="warp")

    def test_replay_engine_param(self):
        sol = solve(Problem(random_star(3, seed=1), "makespan", n=4))
        assert_traces_identical(sol.replay(engine="event"),
                                sol.replay(engine="compiled"))

    def test_lazy_trace_materialises_on_access(self):
        sol = solve(Problem(random_spider(2, 2, seed=1), "makespan", n=6))
        trace = verify_schedule(sol.schedule, lazy_trace=True)
        oracle = verify_by_execution(sol.schedule)
        assert trace.tasks_completed() == 6
        assert trace.makespan == oracle.makespan
        assert trace.events == oracle.events and trace.busy == oracle.busy
        # whole-object comparison must also hold, both ways around
        assert trace == oracle and oracle == trace

    def test_replay_schedule_unknown_engine(self):
        sol = solve(Problem(random_chain(2, seed=1), "makespan", n=2))
        with pytest.raises(SimulationError, match="unknown replay engine"):
            replay_schedule(sol.schedule, "bogus")

    def test_store_engine_plumbs_through(self, tmp_path):
        from repro.service.canon import problem_fingerprint
        from repro.service.store import SolutionStore

        sol = solve(Problem(random_star(4, seed=7), "makespan", n=5))
        for engine in (None, "compiled", "event"):
            store = SolutionStore(engine=engine)
            store.put(problem_fingerprint(sol.problem), sol)
            assert store.stats.writes == 1
        with pytest.raises(Exception):
            SolutionStore(engine="bogus")

    def test_batch_validated_by_column(self):
        from repro.batch import Scenario, run_batch
        from repro.io.json_io import platform_to_dict

        pdict = platform_to_dict(random_spider(2, 2, seed=3))
        compiled_row, = run_batch(
            [Scenario("a", pdict, "makespan", n=4)], validate=True)
        assert compiled_row.validated and compiled_row.validated_by == "compiled"
        event_row, = run_batch(
            [Scenario("a", pdict, "makespan", n=4)], validate=True,
            engine="event")
        assert event_row.validated_by == "event"
        assert event_row.makespan == compiled_row.makespan
        plain_row, = run_batch([Scenario("a", pdict, "makespan", n=4)])
        assert plain_row.validated_by is None
        # trace-only fault runs are checked by the exclusivity scan, and
        # must say so rather than claim a replay engine ran
        fault_row, = run_batch(
            [Scenario("f", pdict, "online", n=6,
                      options={"failures": [{"time": 4, "processor": [1, 1]}]})],
            validate=True)
        assert fault_row.ok and fault_row.validated_by == "trace"
        d = event_row.to_dict()
        assert d["validated_by"] == "event"
        from repro.batch import ScenarioResult

        assert ScenarioResult.from_dict(d).validated_by == "event"

    def test_cli_batch_prints_validated_by(self, capsys, tmp_path):
        import json

        from repro.cli import main
        from repro.io.json_io import platform_to_dict

        path = tmp_path / "scenarios.json"
        path.write_text(json.dumps({
            "schema": 1,
            "scenarios": [{
                "id": "mk", "kind": "makespan", "n": 3,
                "platform": platform_to_dict(random_chain(2, seed=1)),
            }],
        }))
        assert main(["batch", "--scenarios", str(path), "--validate"]) == 0
        out = capsys.readouterr().out
        assert "validated_by" in out and "compiled" in out
        assert main(["batch", "--scenarios", str(path), "--validate",
                     "--engine", "event"]) == 0
        assert "event" in capsys.readouterr().out


class TestRebindVerification:
    def test_cached_solve_verify_rebind(self):
        from repro.service.engine import cached_solve
        from repro.service.store import SolutionStore

        store = SolutionStore()
        problem = Problem(random_star(5, seed=11), "makespan", n=6)
        miss = cached_solve(problem, store, verify_rebind=True)
        hit = cached_solve(problem, store, verify_rebind=True)
        assert not miss.cached and hit.cached
        assert hit.solution.makespan == miss.solution.makespan

    def test_corrupt_store_entry_is_caught_on_rebind(self):
        from repro.service.engine import cache_key, cached_solve
        from repro.service.store import SolutionStore

        problem = Problem(random_star(4, seed=3), "makespan", n=5)
        store = SolutionStore(validate_on_write=False)  # let corruption in
        fingerprint, canon = cache_key(problem)
        canonical = solve(Problem(canon.platform, "makespan", n=5))
        _mutate(canonical.schedule, "early_emit", 1, 6)
        store.put(fingerprint, canonical)
        # the corrupt hit is detected on rebind, quarantined, and answered
        # by a fresh solve instead of raising through the serving loop
        outcome = cached_solve(problem, store, verify_rebind=True)
        assert not outcome.cached
        outcome.solution.validate()
        # the fresh (valid) answer replaced the quarantined entry
        again = cached_solve(problem, store, verify_rebind=True)
        assert again.cached

    def test_service_verifies_rebinds_by_default(self):
        import asyncio

        from repro.service.engine import ScheduleService
        from repro.service.store import SolutionStore

        async def go():
            service = ScheduleService(store=SolutionStore(), workers=1)
            try:
                problem = Problem(random_spider(2, 2, seed=5), "makespan", n=6)
                first = await service.submit(problem)
                second = await service.submit(problem)
            finally:
                service._pool.shutdown(wait=True)
            return service, first, second

        service, first, second = asyncio.run(go())
        assert service.verify_rebinds
        assert not first.cached and second.cached


class TestSimulatorErrorContext:
    """Satellite: livelock/budget failures name the offending handler."""

    def test_at_in_the_past_reports_context(self):
        from repro.sim.engine import Simulator

        sim = Simulator()

        def naughty(s):
            s.at(s.now - 5, naughty)

        sim.at(3, lambda s: None)
        sim.at(2, naughty)
        with pytest.raises(SimulationError) as err:
            sim.run()
        message = str(err.value)
        assert "cannot schedule in the past" in message
        assert "1 events pending" in message
        assert "naughty" in message

    def test_seeding_phase_context(self):
        from repro.sim.engine import Simulator

        sim = Simulator()
        sim.now = 4
        with pytest.raises(SimulationError, match="seeding phase"):
            sim.at(1, lambda s: None)

    def test_budget_error_carries_context(self):
        from repro.core.types import EventBudgetExceeded
        from repro.sim.engine import Simulator

        sim = Simulator(max_events=10)

        def loop(s):
            s.after(1, loop)

        sim.at(0, loop)
        with pytest.raises(EventBudgetExceeded) as err:
            sim.run()
        assert err.value.max_events == 10
        assert "loop" in err.value.context
        assert "pending" in str(err.value)


class TestAdapterMemos:
    """Satellite: per-adapter route memoization."""

    def test_route_cost_memoized_and_correct(self):
        for gen in GENERATORS.values():
            adapter = adapter_for(gen(2))
            for proc in adapter.processors():
                expected = sum(
                    adapter.latency(link) for link in adapter.route(proc)
                )
                assert adapter.route_cost(proc) == expected
                assert adapter.route_cost(proc) == expected  # memo hit

    def test_route_nodes_cached_identity(self):
        adapter = adapter_for(random_spider(2, 3, seed=2))
        for proc in adapter.processors():
            first = adapter.route_nodes(proc)
            assert adapter.route_nodes(proc) is first  # cached tuple
            assert first[-1] == proc

    def test_master_port_memoized(self):
        adapter = adapter_for(random_tree(5, seed=1))
        assert adapter.master_port() == adapter.master_port() == 0
