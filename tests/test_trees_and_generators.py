"""Tests for random generators and the spider-cover tree heuristic (§8)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.steady_state import tree_steady_state
from repro.core.feasibility import check
from repro.core.types import PlatformError
from repro.platforms.generators import (
    chain_family,
    instance_stream,
    random_chain,
    random_spider,
    random_star,
    random_tree,
)
from repro.platforms.tree import ROOT, Tree
from repro.trees.heuristic import (
    best_path_cover,
    cover_efficiency,
    greedy_depth_cover,
    tree_schedule_by_cover,
)


class TestGenerators:
    def test_deterministic_with_seed(self):
        a = random_chain(5, seed=42)
        b = random_chain(5, seed=42)
        assert a == b

    def test_different_seeds_differ(self):
        assert random_chain(8, seed=1) != random_chain(8, seed=2)

    def test_profiles_shape_values(self):
        rng = random.Random(0)
        comm = random_chain(50, profile="comm_bound", rng=rng)
        cpu = random_chain(50, profile="cpu_bound", rng=rng)
        assert sum(comm.c) / sum(comm.w) > 1.5
        assert sum(cpu.w) / sum(cpu.c) > 1.5

    def test_volunteer_profile_valid(self):
        star = random_star(30, profile="volunteer", seed=3)
        assert star.arity == 30

    def test_unknown_profile_rejected(self):
        with pytest.raises(PlatformError):
            random_chain(3, profile="warp_drive")

    def test_random_spider_depth_bounds(self):
        sp = random_spider(4, 3, seed=7)
        assert sp.arity == 4
        assert all(1 <= leg.p <= 3 for leg in sp)

    def test_random_tree_valid(self):
        t = random_tree(12, seed=5)
        assert t.p == 12
        assert t.graph.number_of_nodes() == 13

    def test_random_tree_arity_bound(self):
        t = random_tree(20, max_children=2, seed=9)
        assert all(t.graph.out_degree(v) <= 2 for v in t.graph)

    def test_chain_family_deterministic(self):
        fam1 = list(chain_family([2, 4], seed=11))
        fam2 = list(chain_family([2, 4], seed=11))
        assert fam1 == fam2

    def test_instance_stream_count_and_determinism(self):
        s1 = list(instance_stream(lambda r: r.randint(0, 10**9), 5, seed=3))
        s2 = list(instance_stream(lambda r: r.randint(0, 10**9), 5, seed=3))
        assert len(s1) == 5 and s1 == s2

    def test_generators_reject_bad_sizes(self):
        with pytest.raises(PlatformError):
            random_spider(0, 2)
        with pytest.raises(PlatformError):
            random_tree(0)


class TestSpiderCover:
    def y_tree(self) -> Tree:
        # root -> 1 -> {2, 3};  path 1-2 is fast, 1-3 slow
        return Tree([(0, 1, 1, 4), (1, 2, 1, 2), (1, 3, 5, 9)])

    def test_cover_is_spider_subgraph(self):
        cover = best_path_cover(self.y_tree())
        assert len(cover.legs) == 1
        assert cover.legs[0][0] == 1

    def test_best_cover_prefers_throughput(self):
        cover = best_path_cover(self.y_tree())
        # fast branch 1->2 should win over 1->3
        assert cover.legs[0] == (1, 2)

    def test_depth_cover_ablation_differs(self):
        # craft a tree where the deepest path is slow
        t = Tree(
            [
                (0, 1, 1, 1),
                (1, 2, 9, 9),
                (1, 3, 9, 9),
                (3, 4, 9, 9),  # deep but awful
            ]
        )
        best = best_path_cover(t)
        deep = greedy_depth_cover(t)
        assert len(deep.legs[0]) >= len(best.legs[0])

    def test_uncovered_nodes(self):
        cover = best_path_cover(self.y_tree())
        assert cover.uncovered == {3}
        assert cover.covered == {1, 2}

    def test_node_of_mapping(self):
        cover = best_path_cover(self.y_tree())
        assert cover.node_of(1, 1) == 1
        assert cover.node_of(1, 2) == 2

    def test_schedule_on_tree_feasible(self):
        t = self.y_tree()
        s = tree_schedule_by_cover(t, 5)
        assert s.n_tasks == 5
        assert check(s) == []

    def test_schedule_respects_cover(self):
        t = self.y_tree()
        s = tree_schedule_by_cover(t, 4)
        used = {a.processor for a in s}
        assert used <= {1, 2}

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_trees_feasible(self, seed):
        t = random_tree(7, seed=seed)
        s = tree_schedule_by_cover(t, 6)
        assert s.n_tasks == 6
        assert check(s) == []

    def test_spider_tree_cover_is_lossless(self):
        """If the tree already is a spider, the cover keeps every node and
        the schedule is the optimal spider schedule."""
        t = Tree([(0, 1, 2, 3), (1, 2, 3, 5), (0, 3, 1, 4)])
        cover = best_path_cover(t)
        assert cover.uncovered == set()
        from repro.core.spider import spider_makespan

        s = tree_schedule_by_cover(t, 6)
        assert s.makespan == spider_makespan(t.to_spider(), 6)

    def test_cover_efficiency_bounded(self):
        t = self.y_tree()
        n = 40
        s = tree_schedule_by_cover(t, n)
        eff = cover_efficiency(t, n, s.makespan)
        assert 0 < eff <= 1.05  # can't beat the steady-state bound (mod O(1/n))

    def test_cover_efficiency_degenerate(self):
        t = self.y_tree()
        assert cover_efficiency(t, 5, 0) == 0.0
