"""Tests for the Fig. 6/7 transformation renderers."""

from repro.platforms.presets import paper_fig2_chain
from repro.platforms.spec import ProcessorSpec
from repro.platforms.spider import Spider
from repro.platforms.star import Star
from repro.viz.transformation import (
    node_expansion_to_dot,
    star_expansion_to_dot,
    transformation_to_dot,
)


class TestFig7Rendering:
    def test_fig7_nodes_appear(self):
        spider = Spider([paper_fig2_chain()])
        dot = transformation_to_dot(spider, 14)
        for value in (3, 6, 8, 10, 12):
            assert f'label="{value}"' in dot
        assert dot.count('label="2"') == 5  # all links c1=2

    def test_is_valid_dot_shape(self):
        spider = Spider([paper_fig2_chain()])
        dot = transformation_to_dot(spider, 14)
        assert dot.startswith("digraph") and dot.rstrip().endswith("}")
        assert dot.count("master ->") == 5


class TestFig6Rendering:
    def test_node_ladder(self):
        dot = node_expansion_to_dot(ProcessorSpec(2, 3), copies=4)
        # w + q*m with m=3: 3, 6, 9, 12
        for value in (3, 6, 9, 12):
            assert f'label="{value}"' in dot
        assert dot.count("master ->") == 4

    def test_star_expansion(self):
        star = Star([(2, 3), (5, 2)])
        dot = star_expansion_to_dot(star, t_lim=12)
        # child 1 (m=3): 3, 6, 9;  child 2 (m=5): 2, 7
        assert dot.count("master ->") == 5

    def test_empty_expansion(self):
        dot = star_expansion_to_dot(Star([(5, 5)]), t_lim=4)
        assert dot.count("master ->") == 0
