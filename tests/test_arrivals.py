"""Tests for release-dated (bursty) online arrivals."""

import pytest

from repro.core.feasibility import check
from repro.core.types import ScheduleError
from repro.platforms.chain import Chain
from repro.platforms.presets import seti_like_spider
from repro.platforms.star import Star
from repro.sim.online import simulate_online


class TestArrivals:
    def test_all_at_zero_matches_default(self):
        star = Star([(1, 3), (2, 2)])
        default = simulate_online(star, 6, "demand_driven")
        explicit = simulate_online(star, 6, "demand_driven", arrivals=[0] * 6)
        assert default.makespan == explicit.makespan

    def test_emissions_respect_releases(self):
        star = Star([(1, 1)])
        res = simulate_online(star, 3, "demand_driven", arrivals=[0, 10, 20])
        emissions = sorted(a.first_emission for a in res.schedule)
        assert emissions[1] >= 10 and emissions[2] >= 20
        assert check(res.schedule) == []

    def test_late_burst_stretches_makespan(self):
        star = Star([(1, 2), (1, 2)])
        immediate = simulate_online(star, 8, "demand_driven")
        bursty = simulate_online(
            star, 8, "demand_driven", arrivals=[0, 0, 0, 0, 30, 30, 30, 30]
        )
        assert bursty.makespan > immediate.makespan
        assert bursty.trace.tasks_completed() == 8

    def test_steady_drip_feasible_on_spider(self):
        sp = seti_like_spider()
        arrivals = [2 * i for i in range(12)]
        res = simulate_online(sp, 12, "bandwidth_centric", arrivals=arrivals)
        assert res.trace.tasks_completed() == 12
        assert check(res.schedule) == []

    def test_wrong_length_rejected(self):
        with pytest.raises(ScheduleError):
            simulate_online(Chain(c=(1,), w=(1,)), 3, arrivals=[0, 1])

    def test_unsorted_arrivals_are_sorted(self):
        star = Star([(1, 1)])
        res = simulate_online(star, 3, "demand_driven", arrivals=[20, 0, 10])
        assert res.trace.tasks_completed() == 3
        emissions = sorted(a.first_emission for a in res.schedule)
        assert emissions == [0, 10, 20]

    def test_makespan_at_least_last_release_plus_service(self):
        ch = Chain(c=(2,), w=(3,))
        res = simulate_online(ch, 4, "demand_driven", arrivals=[0, 1, 2, 50])
        assert res.makespan >= 50 + 2 + 3
