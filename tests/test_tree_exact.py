"""Cover heuristic vs the exact optimum on general trees.

The exhaustive baseline works on any platform through the adapter layer, so
small trees get exact optima — which bounds the loss of the §8 spider-cover
heuristic from both sides: never better than optimal, optimal whenever the
tree already is a spider.
"""

import random

import pytest

from repro.baselines.bruteforce import optimal_makespan
from repro.core.feasibility import check
from repro.platforms.generators import random_tree
from repro.platforms.tree import Tree
from repro.trees.heuristic import best_path_cover, tree_schedule_by_cover


class TestExactTreeOptima:
    def test_bruteforce_runs_on_trees(self):
        t = Tree([(0, 1, 2, 3), (1, 2, 1, 4), (1, 3, 2, 5)])
        res = optimal_makespan(t, 3)
        assert res.makespan == 9
        assert check(res.schedule) == []

    def test_cover_never_beats_exact(self):
        rng = random.Random(7)
        for seed in range(20):
            t = random_tree(rng.randint(3, 4), seed=seed)
            for n in (2, 4):
                exact = optimal_makespan(t, n).makespan
                cover = tree_schedule_by_cover(t, n).makespan
                assert cover >= exact

    def test_suboptimal_instances_exist(self):
        """Covering provably loses somewhere: find at least one small tree
        where the cover heuristic is strictly above the exact optimum."""
        rng = random.Random(0)
        found = 0
        for seed in range(60):
            t = random_tree(rng.randint(3, 4), seed=seed)
            if t.is_spider():
                continue
            for n in (3, 5):
                exact = optimal_makespan(t, n).makespan
                cover = tree_schedule_by_cover(t, n).makespan
                assert cover >= exact
                if cover > exact:
                    found += 1
            if found:
                break
        assert found > 0, "expected the cover heuristic to lose somewhere"

    def test_cover_optimal_on_spider_trees(self):
        rng = random.Random(11)
        checked = 0
        for seed in range(30):
            t = random_tree(rng.randint(2, 4), seed=seed)
            if not t.is_spider():
                continue
            checked += 1
            for n in (2, 4):
                exact = optimal_makespan(t, n).makespan
                cover = tree_schedule_by_cover(t, n).makespan
                assert cover == exact, (seed, n)
        assert checked >= 3  # the sweep must actually exercise spiders

    def test_cover_keeps_everything_on_spiders(self):
        t = Tree([(0, 1, 1, 2), (1, 2, 2, 3), (0, 3, 2, 1)])
        assert t.is_spider()
        assert best_path_cover(t).uncovered == set()
