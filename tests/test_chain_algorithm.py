"""Tests of the backward greedy chain algorithm (§3, Theorem 1).

Covers the paper's worked example (Fig. 2) exactly, the algorithm's
invariants (emission order, feasibility, horizon), the deadline variant
(§7 rewrite), and the suffix property of Lemma 2.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chain import (
    ChainRunStats,
    chain_makespan,
    max_tasks_within,
    schedule_chain,
    schedule_chain_deadline,
)
from repro.core.feasibility import check, check_deadline, emission_order, is_feasible
from repro.core.types import PlatformError
from repro.platforms.chain import Chain
from repro.platforms.presets import (
    PAPER_FIG2_MAKESPAN,
    PAPER_FIG2_TASKS,
    paper_fig2_chain,
)

from conftest import chains


class TestPaperFig2:
    """The paper's worked example, reproduced exactly (experiment E1)."""

    def test_makespan_is_14(self, fig2_chain):
        assert chain_makespan(fig2_chain, PAPER_FIG2_TASKS) == PAPER_FIG2_MAKESPAN

    def test_placement_four_plus_one(self, fig2_chain):
        s = schedule_chain(fig2_chain, 5)
        assert s.task_counts() == {1: 4, 2: 1}

    def test_emissions_match_reconstruction(self, fig2_chain):
        s = schedule_chain(fig2_chain, 5)
        assert sorted(a.first_emission for a in s) == [0, 2, 4, 6, 9]

    def test_task_on_processor_2_relayed_6_to_9(self, fig2_chain):
        s = schedule_chain(fig2_chain, 5)
        (task,) = s.tasks_on(2)
        a = s[task]
        assert a.comms.times == (4, 6)
        assert a.start == 9 and s.completion_of(task) == 14

    def test_delayed_task_buffered(self, fig2_chain):
        """Fig. 2's dashed curve: one task waits in the buffer of proc 1."""
        s = schedule_chain(fig2_chain, 5)
        waits = []
        for task in s.tasks_on(1):
            a = s[task]
            arrival = a.first_emission + fig2_chain.latency(1)
            waits.append(a.start - arrival)
        assert any(wait > 0 for wait in waits)

    def test_feasible(self, fig2_chain):
        assert check(schedule_chain(fig2_chain, 5)) == []


class TestBasicInvariants:
    def test_single_task_picks_best_processor(self):
        # proc 1 reachable at 2, runs 9 -> 11; proc 2 reachable at 5, runs 3 -> 8
        ch = Chain(c=(2, 3), w=(9, 3))
        s = schedule_chain(ch, 1)
        assert s[1].processor == 2
        assert s.makespan == 8

    def test_single_processor_no_idle(self):
        ch = Chain(c=(2,), w=(5,))
        s = schedule_chain(ch, 4)
        assert s.makespan == ch.t_infinity(4)
        # executions back-to-back after the first arrival
        ivs = s.processor_intervals()[1]
        for (s1, e1, _), (s2, e2, _) in zip(ivs, ivs[1:]):
            assert s2 == e1

    def test_comm_bound_single_processor(self):
        ch = Chain(c=(5,), w=(2,))  # link slower than CPU
        s = schedule_chain(ch, 3)
        assert s.makespan == ch.t_infinity(3) == 5 + 2 * 5 + 2

    def test_rejects_zero_tasks(self, fig2_chain):
        with pytest.raises(PlatformError):
            schedule_chain(fig2_chain, 0)

    def test_first_emission_at_zero(self, fig2_chain):
        s = schedule_chain(fig2_chain, 7)
        assert s.earliest_emission == 0

    def test_emission_in_task_index_order(self, fig2_chain):
        s = schedule_chain(fig2_chain, 6)
        assert emission_order(s) == s.tasks()

    def test_stats_counters(self, fig2_chain):
        stats = ChainRunStats()
        schedule_chain(fig2_chain, 5, stats=stats)
        assert stats.tasks_placed == 5
        assert stats.candidates_evaluated == 5 * fig2_chain.p
        # Σ_k k per task = p(p+1)/2 = 3
        assert stats.vector_elements == 5 * 3

    @given(chains(max_p=4), st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_always_feasible(self, ch, n):
        s = schedule_chain(ch, n)
        assert s.n_tasks == n
        assert check(s) == []

    @given(chains(max_p=4), st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_makespan_within_horizon(self, ch, n):
        assert chain_makespan(ch, n) <= ch.t_infinity(n)

    @given(chains(max_p=4), st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_makespan_monotone_in_n(self, ch, n):
        assert chain_makespan(ch, n) <= chain_makespan(ch, n + 1)

    @given(chains(max_p=3), st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_extra_processor_never_hurts(self, ch, n):
        extended = Chain(ch.c + (1,), ch.w + (1,))
        assert chain_makespan(extended, n) <= chain_makespan(ch, n)


class TestDeadlineVariant:
    def test_fig2_deadline_14_fits_5(self, fig2_chain):
        s = schedule_chain_deadline(fig2_chain, 14)
        assert s.n_tasks == 5
        assert check_deadline(s, 14) == []

    def test_fig2_deadline_13_fits_fewer(self, fig2_chain):
        assert max_tasks_within(fig2_chain, 13) < 5

    def test_zero_deadline_fits_none(self, fig2_chain):
        assert max_tasks_within(fig2_chain, 0) == 0

    def test_cap_respected(self, fig2_chain):
        s = schedule_chain_deadline(fig2_chain, 100, n=3)
        assert s.n_tasks == 3

    def test_tasks_renumbered_from_one(self, fig2_chain):
        s = schedule_chain_deadline(fig2_chain, 14)
        assert s.tasks() == [1, 2, 3, 4, 5]

    @given(chains(max_p=4), st.integers(0, 40))
    @settings(max_examples=60, deadline=None)
    def test_deadline_schedules_feasible_and_within(self, ch, t_lim):
        s = schedule_chain_deadline(ch, t_lim)
        assert check_deadline(s, t_lim) == []

    @given(chains(max_p=4), st.integers(0, 30))
    @settings(max_examples=40, deadline=None)
    def test_max_tasks_monotone_in_tlim(self, ch, t_lim):
        assert max_tasks_within(ch, t_lim) <= max_tasks_within(ch, t_lim + 1)

    @given(chains(max_p=4), st.integers(1, 7))
    @settings(max_examples=40, deadline=None)
    def test_deadline_consistent_with_makespan(self, ch, n):
        """makespan(n) is the smallest Tlim admitting n tasks."""
        mk = chain_makespan(ch, n)
        assert max_tasks_within(ch, mk) >= n
        if mk > 0:
            assert max_tasks_within(ch, mk - 1) < n


class TestLemma2SuffixProperty:
    """Lemma 2: tasks placed beyond processor 1 form the sub-chain schedule;
    operationally (and as used by Lemma 4 / the spider revert), the deadline
    run for k tasks equals the last k tasks of the run for n > k tasks."""

    @given(chains(max_p=4), st.integers(1, 20), st.integers(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_deadline_suffix_property(self, ch, t_lim, k):
        full = schedule_chain_deadline(ch, t_lim)
        if full.n_tasks <= k:
            return
        part = schedule_chain_deadline(ch, t_lim, n=k)
        assert part.n_tasks == k
        offset = full.n_tasks - k
        for i in range(1, k + 1):
            a_part, a_full = part[i], full[offset + i]
            assert a_part.processor == a_full.processor
            assert a_part.start == a_full.start
            assert a_part.comms.times == a_full.comms.times

    @given(chains(max_p=4), st.integers(2, 7))
    @settings(max_examples=40, deadline=None)
    def test_subchain_projection(self, ch, n):
        """The paper's statement: tasks with P(i) >= 2 equal the sub-chain
        schedule shifted by Tshift = min C_i^2."""
        if ch.p < 2:
            return
        full = schedule_chain(ch, n)
        beyond = [t for t in full.tasks() if full[t].processor >= 2]
        if not beyond:
            return
        sub = ch.subchain(2)
        sub_sched = schedule_chain(sub, len(beyond))
        t_shift = min(full[t].comms[2] for t in beyond)
        for j, t in enumerate(sorted(beyond), start=1):
            a_full, a_sub = full[t], sub_sched[j]
            assert a_sub.processor == a_full.processor - 1
            assert a_sub.start == a_full.start - t_shift
            # communication vectors beyond link 1 match up to the shift
            assert tuple(x - t_shift for x in a_full.comms.times[1:]) == a_sub.comms.times
