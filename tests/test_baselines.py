"""Tests for ASAP semantics, the exhaustive search and forward heuristics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.asap import AsapState, asap_from_sequence, asap_makespan
from repro.baselines.bruteforce import (
    enumerate_makespans,
    optimal_makespan,
)
from repro.baselines.heuristics import (
    ALL_HEURISTICS,
    bandwidth_greedy,
    greedy_earliest_completion,
    greedy_min_makespan,
    master_only,
    round_robin,
)
from repro.core.chain import chain_makespan
from repro.core.feasibility import check, is_feasible
from repro.core.schedule import adapter_for
from repro.platforms.chain import Chain
from repro.platforms.spider import Spider
from repro.platforms.star import Star

from conftest import chains, spiders


class TestAsap:
    def test_single_task_times(self):
        ch = Chain(c=(2, 3), w=(3, 5))
        s = asap_from_sequence(ch, [2])
        assert s[1].comms.times == (0, 2)
        assert s[1].start == 5 and s.makespan == 10

    def test_pipelining_overlap(self):
        ch = Chain(c=(2,), w=(3,))
        s = asap_from_sequence(ch, [1, 1, 1])
        # comms [0,2],[2,4],[4,6]; execs [2,5],[5,8],[8,11]
        assert s.makespan == 11
        assert [a.first_emission for a in s] == [0, 2, 4]

    def test_sequence_order_is_emission_order(self):
        ch = Chain(c=(1, 1), w=(5, 1))
        s = asap_from_sequence(ch, [2, 1, 2])
        emissions = [a.first_emission for a in s]
        assert emissions == sorted(emissions)

    @given(chains(max_p=4), st.lists(st.integers(1, 4), min_size=1, max_size=7))
    @settings(max_examples=80, deadline=None)
    def test_always_feasible(self, ch, raw_seq):
        seq = [min(d, ch.p) for d in raw_seq]
        s = asap_from_sequence(ch, seq)
        assert check(s) == []

    @given(spiders(max_legs=2, max_depth=2), st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_feasible_on_spiders(self, sp, n):
        procs = adapter_for(sp).processors()
        seq = [procs[i % len(procs)] for i in range(n)]
        s = asap_from_sequence(sp, seq)
        assert check(s) == []

    def test_makespan_shortcut_matches(self):
        ch = Chain(c=(2, 1), w=(3, 4))
        seq = [1, 2, 1]
        assert asap_makespan(ch, seq) == asap_from_sequence(ch, seq).makespan

    def test_peek_does_not_mutate(self):
        ch = Chain(c=(2,), w=(3,))
        state = AsapState(adapter_for(ch))
        before = state.peek_completion(1)
        state.peek_completion(1)
        assert state.placed == [] and state.peek_completion(1) == before

    def test_state_copy_is_independent(self):
        ch = Chain(c=(2,), w=(3,))
        state = AsapState(adapter_for(ch))
        clone = state.copy()
        clone.push(1)
        assert state.placed == [] and clone.makespan == 5


class TestBruteForce:
    def test_optimal_is_minimum_of_enumeration(self):
        ch = Chain(c=(2, 3), w=(3, 5))
        all_mk = [mk for mk, _ in enumerate_makespans(ch, 3)]
        assert optimal_makespan(ch, 3).makespan == min(all_mk)

    def test_enumeration_size(self):
        ch = Chain(c=(1, 1), w=(1, 1))
        assert len(enumerate_makespans(ch, 3)) == 2**3

    def test_enumeration_limit_guard(self):
        ch = Chain.homogeneous(4, 1, 1)
        with pytest.raises(ValueError):
            enumerate_makespans(ch, 12, limit=100)

    def test_result_schedule_feasible(self):
        star = Star([(1, 2), (2, 1)])
        res = optimal_makespan(star, 4)
        assert check(res.schedule) == []
        assert res.schedule.makespan == res.makespan
        assert sum(res.counts.values()) == 4

    def test_explored_counts_pruning(self):
        ch = Chain(c=(1,), w=(1,))
        res = optimal_makespan(ch, 5)
        assert res.explored >= 5  # at least the winning path


class TestHeuristics:
    PLATFORMS = [
        Chain(c=(2, 3), w=(3, 5)),
        Star([(1, 4), (2, 2), (3, 1)]),
        Spider([Chain(c=(1, 2), w=(2, 3)), Chain(c=(2,), w=(1,))]),
    ]

    @pytest.mark.parametrize("name", sorted(ALL_HEURISTICS))
    @pytest.mark.parametrize("platform", PLATFORMS, ids=["chain", "star", "spider"])
    def test_feasible_everywhere(self, name, platform):
        s = ALL_HEURISTICS[name](platform, 6)
        assert s.n_tasks == 6
        assert check(s) == []

    @given(chains(max_p=3), st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_never_beat_optimal(self, ch, n):
        opt = chain_makespan(ch, n)
        for heuristic in ALL_HEURISTICS.values():
            assert heuristic(ch, n).makespan >= opt

    def test_master_only_uses_one_processor(self):
        ch = Chain(c=(2, 3), w=(3, 5))
        s = master_only(ch, 5)
        assert len(s.task_counts()) == 1

    def test_master_only_matches_t_infinity_when_first_wins(self):
        ch = Chain(c=(2,), w=(3,))
        assert master_only(ch, 4).makespan == ch.t_infinity(4)

    def test_round_robin_cycles(self):
        star = Star([(1, 1), (1, 1), (1, 1)])
        s = round_robin(star, 6)
        assert s.task_counts() == {1: 2, 2: 2, 3: 2}

    def test_greedy_mct_prefers_fast_child(self):
        star = Star([(1, 1), (5, 9)])
        s = greedy_earliest_completion(star, 4)
        assert s.task_counts().get(1, 0) >= 3

    def test_greedy_min_makespan_at_least_as_good_as_rr_usually(self):
        ch = Chain(c=(1, 1, 1), w=(2, 4, 8))
        n = 8
        assert greedy_min_makespan(ch, n).makespan <= round_robin(ch, n).makespan

    def test_bandwidth_greedy_prefers_cheap_links(self):
        star = Star([(1, 3), (9, 3)])
        s = bandwidth_greedy(star, 4)
        assert s.task_counts().get(1, 0) >= 3

    def test_zero_tasks(self):
        ch = Chain(c=(1,), w=(1,))
        assert round_robin(ch, 0).n_tasks == 0
