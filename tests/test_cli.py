"""CLI tests — every subcommand exercised through main()."""

import pytest

from repro.cli import main
from repro.io.json_io import load_schedule, save_platform
from repro.platforms.chain import Chain


class TestFig2Command:
    def test_prints_paper_numbers(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "makespan: 14" in out
        assert "[3, 6, 8, 10, 12]" in out

    def test_gantt_flag(self, capsys):
        main(["fig2", "--gantt"])
        out = capsys.readouterr().out
        assert "proc 1" in out


class TestScheduleCommands:
    def test_chain(self, capsys):
        assert main(["chain", "--c", "2,3", "--w", "3,5", "-n", "5"]) == 0
        assert "makespan: 14" in capsys.readouterr().out

    def test_spider(self, capsys):
        assert main(["spider", "--leg", "2/3,3/5", "--leg", "1/4", "-n", "6"]) == 0
        assert "makespan:" in capsys.readouterr().out

    def test_star(self, capsys):
        assert main(["star", "--child", "2/3", "--child", "1/5", "-n", "4"]) == 0
        assert "makespan:" in capsys.readouterr().out

    def test_svg_and_json_outputs(self, capsys, tmp_path):
        svg = tmp_path / "x.svg"
        js = tmp_path / "x.json"
        main(["chain", "--c", "2", "--w", "3", "-n", "2",
              "--svg", str(svg), "--json", str(js)])
        assert svg.read_text().startswith("<svg")
        assert load_schedule(js).n_tasks == 2

    def test_platform_file(self, capsys, tmp_path):
        path = tmp_path / "p.json"
        save_platform(Chain(c=(2, 3), w=(3, 5)), path)
        assert main(["chain", "--platform", str(path), "-n", "5"]) == 0
        assert "makespan: 14" in capsys.readouterr().out

    def test_missing_platform_errors(self):
        with pytest.raises(SystemExit):
            main(["chain", "-n", "3"])

    def test_float_values_parse(self, capsys):
        assert main(["chain", "--c", "1.5", "--w", "2.5", "-n", "2"]) == 0


class TestAnalysisCommands:
    def test_compare_lists_all_heuristics(self, capsys):
        assert main(["compare", "--c", "2,3", "--w", "3,5", "-n", "6"]) == 0
        out = capsys.readouterr().out
        assert "optimal (paper)" in out
        for name in ("master_only", "round_robin", "greedy_mct"):
            assert name in out

    def test_compare_on_star(self, capsys):
        assert main(["compare", "--child", "1/2", "--child", "2/1", "-n", "5"]) == 0
        assert "x1.000" in capsys.readouterr().out

    def test_simulate(self, capsys):
        assert main(["simulate", "--c", "2,3", "--w", "3,5", "-n", "5",
                     "--policy", "demand_driven"]) == 0
        out = capsys.readouterr().out
        assert "policy: demand_driven" in out
        assert "tasks: 5" in out

    def test_steady_chain(self, capsys):
        assert main(["steady", "--c", "2,3", "--w", "3,5"]) == 0
        assert "1/2" in capsys.readouterr().out

    def test_steady_star(self, capsys):
        assert main(["steady", "--child", "1/2", "--child", "4/1"]) == 0
        assert "5/8" in capsys.readouterr().out

    def test_steady_spider(self, capsys):
        assert main(["steady", "--leg", "2/3,3/5", "--leg", "1/4"]) == 0
        assert "throughput" in capsys.readouterr().out


class TestExtendedCommands:
    def test_tree(self, capsys):
        assert main(["tree", "--workers", "6", "-n", "10"]) == 0
        out = capsys.readouterr().out
        assert "cover" in out and "makespan" in out

    def test_tree_dot(self, capsys):
        assert main(["tree", "--workers", "5", "-n", "6", "--dot"]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_failures_star(self, capsys):
        assert main(["failures", "--child", "1/3", "--child", "2/2",
                     "-n", "8", "--kill", "3@1"]) == 0
        out = capsys.readouterr().out
        assert "completed: 8" in out
        assert "reissues:" in out

    def test_failures_spider_tuple_proc(self, capsys):
        assert main(["failures", "--leg", "1/4,2/3", "--leg", "5/7",
                     "-n", "10", "--kill", "6@1,2"]) == 0
        assert "survivors" in capsys.readouterr().out

    def test_failures_none(self, capsys):
        assert main(["failures", "--child", "1/2", "-n", "4"]) == 0
        assert "reissues: 0" in capsys.readouterr().out

    def test_fig7_dot(self, capsys):
        assert main(["fig7", "--c", "2,3", "--w", "3,5", "--tlim", "14"]) == 0
        out = capsys.readouterr().out
        assert "digraph" in out
        for value in (3, 6, 8, 10, 12):
            assert f'label="{value}"' in out

    def test_fig7_rejects_star(self):
        with pytest.raises(SystemExit):
            main(["fig7", "--child", "1/2", "--tlim", "10"])


class TestBatchCommand:
    def _scenario_file(self, tmp_path):
        import json

        from repro.io.json_io import platform_to_dict
        from repro.platforms.generators import random_spider

        pdict = platform_to_dict(random_spider(3, 2, seed=7))
        path = tmp_path / "scenarios.json"
        path.write_text(json.dumps({
            "schema": 1,
            "scenarios": [
                {"id": "mk", "platform": pdict, "kind": "makespan", "n": 5},
                {"id": "dl", "platform": pdict, "kind": "deadline", "t_lim": 20},
            ],
        }))
        return path

    def test_batch_runs_and_reports(self, capsys, tmp_path):
        path = self._scenario_file(tmp_path)
        assert main(["batch", "--scenarios", str(path)]) == 0
        out = capsys.readouterr().out
        assert "2/2 scenarios ok" in out
        assert "mk" in out and "dl" in out

    def test_batch_writes_results_json(self, capsys, tmp_path):
        import json

        path = self._scenario_file(tmp_path)
        out_path = tmp_path / "results.json"
        assert main(["batch", "--scenarios", str(path),
                     "--out", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        assert {r["scenario_id"] for r in payload["results"]} == {"mk", "dl"}
        assert all(r["ok"] for r in payload["results"])

    def test_batch_nonzero_exit_on_failure(self, capsys, tmp_path):
        import json

        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "schema": 1,
            "scenarios": [
                {"id": "broken", "kind": "makespan", "n": 2,
                 "platform": {"kind": "spider", "legs": []}},
            ],
        }))
        assert main(["batch", "--scenarios", str(path)]) == 1
        assert "0/1 scenarios ok" in capsys.readouterr().out

    def test_batch_summary_reports_obs_dispatches(self, capsys, tmp_path):
        path = self._scenario_file(tmp_path)
        assert main(["batch", "--scenarios", str(path)]) == 0
        assert "obs: 2 solve dispatches" in capsys.readouterr().out

    def test_batch_profile_writes_machine_readable_json(
        self, capsys, tmp_path
    ):
        import json

        path = self._scenario_file(tmp_path)
        prof = tmp_path / "prof.out"
        assert main(["batch", "--scenarios", str(path),
                     "--profile", str(prof)]) == 0
        assert prof.exists()
        payload = json.loads((tmp_path / "prof.out.json").read_text())
        assert payload["schema"] == 1
        assert payload["total_seconds"] >= 0
        assert payload["total_calls"] > 0
        assert 0 < len(payload["functions"]) <= 25
        top = payload["functions"][0]
        assert set(top) == {"file", "line", "name", "ncalls",
                            "primitive_calls", "tottime", "cumtime"}
        # sorted by cumulative time, heaviest first
        cums = [f["cumtime"] for f in payload["functions"]]
        assert cums == sorted(cums, reverse=True)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["warp"])


class TestTreeMultiRound:
    def test_tree_deadline_mode_prints_rounds(self, capsys):
        assert main(["tree", "--workers", "9", "--profile", "cpu_heavy",
                     "--seed", "310", "-n", "40", "--tlim", "120"]) == 0
        out = capsys.readouterr().out
        assert "cover round(s)" in out
        assert "tasks by Tlim=120" in out
        assert "multi-round efficiency" in out

    def test_tree_round_cap_flag(self, capsys):
        assert main(["tree", "--workers", "9", "--profile", "cpu_heavy",
                     "--seed", "310", "-n", "40", "--tlim", "120",
                     "--rounds", "1"]) == 0
        out = capsys.readouterr().out
        assert "1 cover round(s)" in out

    def test_tree_strategy_flags(self, capsys):
        assert main(["tree", "--workers", "6", "-n", "8",
                     "--strategy", "widest", "--residual", "widest"]) == 0
        assert "makespan" in capsys.readouterr().out

    def test_tree_platform_file(self, capsys, tmp_path):
        from repro.platforms.generators import random_tree

        path = tmp_path / "tree.json"
        save_platform(random_tree(5, seed=3), path)
        assert main(["tree", "--platform", str(path), "-n", "6"]) == 0
        assert "5 workers" in capsys.readouterr().out

    def test_tree_rejects_non_tree_platform(self, tmp_path):
        path = tmp_path / "chain.json"
        save_platform(Chain(c=(2,), w=(3,)), path)
        with pytest.raises(SystemExit):
            main(["tree", "--platform", str(path), "-n", "4"])


class TestSolverRegistryHelp:
    def test_batch_help_lists_registered_solvers(self, capsys):
        from repro.solve import registered_solvers

        with pytest.raises(SystemExit):
            main(["batch", "--help"])
        out = capsys.readouterr().out
        for solver in registered_solvers():
            assert solver.name in out
        assert "solver registry" in out

    def test_no_solve_ladders_left(self):
        """The acceptance guard: cli.py and batch/runner.py must contain no
        per-platform isinstance/elif solve ladders (the registry is the only
        platform dispatch)."""
        import inspect

        import repro.batch.runner as runner_mod
        import repro.cli as cli_mod

        for mod in (cli_mod, runner_mod):
            source = inspect.getsource(mod)
            assert "isinstance(platform, Chain)" not in source
            assert "isinstance(platform, Star)" not in source
            assert "elif isinstance" not in source

    def test_batch_cli_runs_tree_scenarios(self, capsys, tmp_path):
        import json

        from repro.io.json_io import platform_to_dict
        from repro.platforms.generators import random_tree

        pdict = platform_to_dict(random_tree(8, profile="cpu_heavy", seed=316))
        path = tmp_path / "scenarios.json"
        path.write_text(json.dumps({
            "schema": 1,
            "scenarios": [
                {"id": "tree-mk", "platform": pdict, "kind": "makespan", "n": 6},
                {"id": "tree-dl", "platform": pdict, "kind": "deadline",
                 "t_lim": 90},
            ],
        }))
        assert main(["batch", "--scenarios", str(path)]) == 0
        out = capsys.readouterr().out
        assert "2/2 scenarios ok" in out
        assert "tree-mk" in out and "tree-dl" in out


class TestVersionFlag:
    def test_version_prints_and_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(["--version"])
        assert exit_info.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        # semantic-version shaped: at least major.minor with digits
        version = out.split()[1]
        parts = version.split(".")
        assert len(parts) >= 2 and parts[0].isdigit()


class TestExitCodes:
    """The CLI's documented error exit codes, pinned."""

    def test_constants_are_distinct_and_documented(self):
        from repro.cli import (
            EXIT_FAILURE,
            EXIT_INFEASIBLE,
            EXIT_NO_SOLVER,
            EXIT_OK,
            EXIT_USAGE,
            EXIT_VALIDATION,
        )

        codes = [EXIT_OK, EXIT_FAILURE, EXIT_USAGE, EXIT_NO_SOLVER,
                 EXIT_INFEASIBLE, EXIT_VALIDATION]
        assert codes == [0, 1, 2, 3, 4, 5]

    def test_no_solver_registered_exits_3(self, capsys):
        from repro.solve.registry import _COMPILED_REGISTRY, _REGISTRY

        saved = _REGISTRY.pop(("offline", Chain))
        saved_compiled = _COMPILED_REGISTRY.pop(("offline", Chain))
        try:
            rc = main(["chain", "--c", "2,3", "--w", "3,5", "-n", "5"])
        finally:
            _REGISTRY[("offline", Chain)] = saved
            _COMPILED_REGISTRY[("offline", Chain)] = saved_compiled
        assert rc == 3
        assert "no registered solver" in capsys.readouterr().err

    def test_infeasible_exits_4(self, capsys, monkeypatch):
        from repro.core.types import InfeasibleScheduleError

        def explode(problem):
            raise InfeasibleScheduleError(["port overlap at t=3"])

        monkeypatch.setattr("repro.cli.solve", explode)
        rc = main(["chain", "--c", "2,3", "--w", "3,5", "-n", "5"])
        assert rc == 4
        assert "infeasible" in capsys.readouterr().err

    def test_validation_failed_exits_5(self, capsys, monkeypatch):
        from repro.solve.problem import ValidationError

        def explode(problem):
            raise ValidationError("makespan drifted under replay")

        monkeypatch.setattr("repro.cli.solve", explode)
        rc = main(["chain", "--c", "2,3", "--w", "3,5", "-n", "5"])
        assert rc == 5
        assert "drifted" in capsys.readouterr().err


class TestBatchCache:
    def _scenario_file(self, tmp_path):
        import json

        from repro.io.json_io import platform_to_dict
        from repro.platforms.spider import Spider

        legs = [Chain([2, 3], [3, 5]), Chain([1], [4])]
        pdict = platform_to_dict(Spider(legs))
        relabeled = platform_to_dict(Spider(legs[::-1]))
        path = tmp_path / "scenarios.json"
        path.write_text(json.dumps({
            "schema": 1,
            "scenarios": [
                {"id": "mk-a", "platform": pdict, "kind": "makespan", "n": 8},
                {"id": "mk-b", "platform": relabeled, "kind": "makespan",
                 "n": 8},
                {"id": "dl-a", "platform": pdict, "kind": "deadline",
                 "t_lim": 30},
            ],
        }))
        return path

    def test_cache_flag_reports_hits(self, capsys, tmp_path):
        path = self._scenario_file(tmp_path)
        cache = tmp_path / "cache.sqlite"
        assert main(["batch", "--scenarios", str(path),
                     "--cache", str(cache), "--validate"]) == 0
        out = capsys.readouterr().out
        # mk-b is isomorphic to mk-a: served from cache on the first run
        assert "(1 cache hits)" in out
        # second run: everything is in the persistent store
        assert main(["batch", "--scenarios", str(path),
                     "--cache", str(cache), "--validate"]) == 0
        assert "(3 cache hits)" in capsys.readouterr().out

    def test_cached_flag_lands_in_results_json(self, tmp_path):
        import json

        path = self._scenario_file(tmp_path)
        out_path = tmp_path / "results.json"
        assert main(["batch", "--scenarios", str(path),
                     "--cache", str(tmp_path / "c.sqlite"),
                     "--out", str(out_path)]) == 0
        results = {r["scenario_id"]: r
                   for r in json.loads(out_path.read_text())["results"]}
        assert results["mk-a"]["cached"] is False
        assert results["mk-b"]["cached"] is True


class TestServeParser:
    def test_serve_help_mentions_protocol(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--help"])
        out = capsys.readouterr().out
        assert "--store" in out and "--tcp" in out and "--workers" in out
