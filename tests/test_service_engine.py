"""The serving engine: cached_solve, coalescing, protocol, client, CLI.

The acceptance-critical test is
``TestCachedSolve::test_relabeled_isomorphic_hit_replays_bit_exactly``:
for every registered offline solver, a relabeled-isomorphic platform must
be served from cache and the rebound solution must replay-validate
bit-exactly on the *relabeled* platform.
"""

import asyncio
import json
import random
import time

import pytest

from repro.platforms.chain import Chain
from repro.platforms.generators import random_tree
from repro.platforms.spider import Spider
from repro.platforms.star import Star
from repro.platforms.tree import Tree
from repro.service import (
    ScheduleService,
    ServiceClient,
    ServiceError,
    SolutionStore,
    cached_solve,
)
from repro.service.protocol import handle_request, smoke
from repro.solve import Problem, registered_solvers, solve


def _relabel(platform, seed: int = 7):
    """A randomly relabeled isomorphic copy of ``platform``."""
    rng = random.Random(seed)
    if isinstance(platform, Chain):
        return platform  # a chain has no relabeling freedom
    if isinstance(platform, Star):
        children = list(platform.children)
        rng.shuffle(children)
        return Star(children)
    if isinstance(platform, Spider):
        legs = list(platform.legs)
        rng.shuffle(legs)
        return Spider(legs)
    if isinstance(platform, Tree):
        nodes = platform.workers
        new_ids = rng.sample(range(1, 10 * (len(nodes) + 2)), len(nodes))
        perm = {0: 0, **dict(zip(nodes, new_ids))}
        edges = [
            (perm[platform.parent(v)], perm[v],
             platform.latency(v), platform.work(v))
            for v in nodes
        ]
        rng.shuffle(edges)
        return Tree(edges)
    raise AssertionError(f"unhandled platform {type(platform)}")


def _platform_for(solver):
    """A representative platform instance for a registered solver."""
    return {
        "chain": Chain([2, 3, 1], [3, 5, 2]),
        "star": Star([(2, 3), (1, 5), (3, 2)]),
        "spider": Spider([Chain([2, 3], [3, 5]), Chain([1], [4]),
                          Chain([2, 2], [2, 6])]),
        "tree": random_tree(6, seed=11),
    }[solver.name]


class TestCachedSolve:
    @pytest.mark.parametrize(
        "solver", registered_solvers("offline"), ids=lambda s: s.name
    )
    def test_relabeled_isomorphic_hit_replays_bit_exactly(self, solver):
        platform = _platform_for(solver)
        store = SolutionStore()
        cold = cached_solve(Problem(platform, "makespan", n=10), store)
        assert not cold.cached
        relabeled = _relabel(platform)
        warm = cached_solve(Problem(relabeled, "makespan", n=10), store)
        assert warm.cached, f"{solver.name}: relabeled platform must hit"
        assert store.stats.hits == 1 and store.stats.writes == 1
        # the served schedule lives on the *relabeled* platform ...
        assert warm.solution.schedule.platform is relabeled
        # ... matches the cold answer bit-exactly ...
        assert warm.solution.makespan == cold.solution.makespan
        assert warm.solution.n_tasks == cold.solution.n_tasks
        # ... and replay-validates on it (simulator re-execution)
        warm.solution.validate()

    @pytest.mark.parametrize(
        "solver", registered_solvers("offline"), ids=lambda s: s.name
    )
    def test_deadline_problems_cache_too(self, solver):
        platform = _platform_for(solver)
        t_lim = solve(Problem(platform, "makespan", n=6)).makespan
        store = SolutionStore()
        cold = cached_solve(Problem(platform, "deadline", t_lim=t_lim), store)
        warm = cached_solve(
            Problem(_relabel(platform), "deadline", t_lim=t_lim), store
        )
        assert warm.cached
        assert warm.solution.n_tasks == cold.solution.n_tasks
        warm.solution.validate()

    def test_different_questions_do_not_collide(self):
        chain = Chain([2, 3], [3, 5])
        store = SolutionStore()
        a = cached_solve(Problem(chain, "makespan", n=5), store)
        b = cached_solve(Problem(chain, "makespan", n=6), store)
        assert not b.cached
        assert a.fingerprint != b.fingerprint

    def test_online_mode_bypasses_cache(self):
        chain = Chain([2, 3], [3, 5])
        store = SolutionStore()
        out = cached_solve(
            Problem(chain, "makespan", n=4, mode="online",
                    options={"policy": "round_robin"}),
            store,
        )
        assert out.fingerprint is None
        assert store.stats.requests == 0 and len(store) == 0
        assert out.solution.trace is not None

    def test_cached_solution_is_a_fresh_rebind(self):
        """Hits must not alias the stored object's mutable parts."""
        chain = Chain([2, 3], [3, 5])
        store = SolutionStore()
        a = cached_solve(Problem(chain, "makespan", n=5), store)
        b = cached_solve(Problem(chain, "makespan", n=5), store)
        assert b.cached
        assert b.solution is not a.solution
        assert b.solution.schedule is not a.solution.schedule
        b.solution.stats["poked"] = True
        assert "poked" not in store.get(b.fingerprint).stats


class TestServiceEngine:
    def test_coalescing_single_solve(self):
        async def go():
            service = ScheduleService(store=SolutionStore(), workers=2)
            try:
                legs = [Chain([2, 3], [3, 5]), Chain([1], [4])]
                platforms = [Spider(legs), Spider(legs[::-1])] * 3
                outs = await asyncio.gather(
                    *(service.submit(Problem(p, "makespan", n=24))
                      for p in platforms)
                )
            finally:
                service._pool.shutdown(wait=True)
            return service, outs

        service, outs = asyncio.run(go())
        assert service.store.stats.writes == 1, "one in-flight solve total"
        assert sum(o.coalesced for o in outs) == len(outs) - 1
        makespans = {o.solution.makespan for o in outs}
        assert len(makespans) == 1
        for o in outs:
            o.solution.validate()

    def test_sequential_requests_hit_the_store(self):
        async def go():
            service = ScheduleService(store=SolutionStore(), workers=1)
            try:
                chain = Chain([2, 3], [3, 5])
                first = await service.submit(Problem(chain, "makespan", n=5))
                second = await service.submit(Problem(chain, "makespan", n=5))
            finally:
                service._pool.shutdown(wait=True)
            return first, second

        first, second = asyncio.run(go())
        assert not first.cached and second.cached

    def test_solver_errors_propagate_to_all_waiters(self):
        async def go():
            service = ScheduleService(store=SolutionStore(), workers=2)
            try:
                bad = Problem(Chain([2], [3]), "makespan", n=2,
                              options={"not_an_option": 1})
                results = await asyncio.gather(
                    *(service.submit(bad) for _ in range(3)),
                    return_exceptions=True,
                )
            finally:
                service._pool.shutdown(wait=True)
            return service, results

        service, results = asyncio.run(go())
        assert all(isinstance(r, Exception) for r in results)
        assert service.errors == 3

    def test_stats_shape(self):
        service = ScheduleService(store=SolutionStore(), workers=2)
        stats = service.stats()
        assert stats["workers"] == 2
        assert stats["store"]["hit_rate"] == 0.0
        service._pool.shutdown(wait=True)

    def test_stats_reports_uptime(self):
        service = ScheduleService(store=SolutionStore(), workers=1)
        try:
            first = service.stats()["uptime_s"]
            assert first >= 0
            time.sleep(0.01)
            assert service.stats()["uptime_s"] >= first
        finally:
            service._pool.shutdown(wait=True)

    def test_stats_latency_percentiles_per_op(self):
        from repro.io.json_io import problem_to_dict

        service = ScheduleService(store=SolutionStore(), workers=1)
        try:
            problem = Problem(Chain([2, 3], [3, 5]), "makespan", n=5)
            request = {"op": "solve",
                       "problem": problem_to_dict(problem)}
            for _ in range(3):
                asyncio.run(handle_request(service, json.dumps(request)))
            asyncio.run(handle_request(service, json.dumps({"op": "ping"})))
            latency = service.stats()["latency"]
        finally:
            service._pool.shutdown(wait=True)
        assert latency["solve"]["count"] == 3
        assert latency["ping"]["count"] == 1
        for op_stats in latency.values():
            # bucketed estimates from the shared ms ladder, not exact
            assert op_stats["p50_ms"] is not None
            assert (op_stats["p50_ms"] <= op_stats["p95_ms"]
                    <= op_stats["p99_ms"])

    def test_latency_is_per_instance(self):
        a = ScheduleService(store=SolutionStore(), workers=1)
        b = ScheduleService(store=SolutionStore(), workers=1)
        try:
            asyncio.run(handle_request(a, json.dumps({"op": "ping"})))
            assert "ping" in a.stats()["latency"]
            assert b.stats()["latency"] == {}
        finally:
            a._pool.shutdown(wait=True)
            b._pool.shutdown(wait=True)


class TestProtocol:
    def _request(self, service, payload) -> dict:
        return asyncio.run(handle_request(service, json.dumps(payload)))

    def test_solve_roundtrip_and_hit(self):
        from repro.io.json_io import problem_to_dict, solution_from_dict

        service = ScheduleService(store=SolutionStore(), workers=1)
        problem = Problem(Chain([2, 3], [3, 5]), "makespan", n=5)
        request = {"id": "r1", "op": "solve",
                   "problem": problem_to_dict(problem)}
        first = self._request(service, request)
        assert first["ok"] and first["id"] == "r1" and not first["cached"]
        assert solution_from_dict(first["solution"]).makespan == 14
        second = self._request(service, request)
        assert second["cached"]
        service._pool.shutdown(wait=True)

    def test_ping_stats_and_errors(self):
        service = ScheduleService(store=SolutionStore(), workers=1)
        assert self._request(service, {"op": "ping"})["pong"]
        assert "store" in self._request(service, {"op": "stats"})["stats"]
        bad_op = self._request(service, {"op": "nope"})
        assert not bad_op["ok"] and bad_op["error_kind"] == "bad_request"
        bad_payload = self._request(service, {"op": "solve", "problem": {}})
        assert bad_payload["error_kind"] == "bad_request"
        malformed = asyncio.run(handle_request(service, "{not json"))
        assert malformed["error_kind"] == "bad_request"
        service._pool.shutdown(wait=True)

    def test_solver_error_kinds(self):
        from repro.io.json_io import problem_to_dict

        service = ScheduleService(store=SolutionStore(), workers=1)
        problem = Problem(Chain([2], [3]), "makespan", n=2,
                          options={"bogus": 1})
        response = self._request(
            service, {"op": "solve", "problem": problem_to_dict(problem)}
        )
        assert not response["ok"] and response["error_kind"] == "error"
        service._pool.shutdown(wait=True)


class TestServeEndToEnd:
    """Spawn the real ``repro serve`` subprocess over stdio."""

    def test_smoke(self):
        summary = smoke()
        assert summary["requests"] == 3
        assert summary["hits"] == 2

    def test_client_error_response(self):
        with ServiceClient.spawn(workers=1) as client:
            response = client.request({"op": "solve", "problem": {"nope": 1}})
            assert not response["ok"]
            assert response["error_kind"] == "bad_request"
            with pytest.raises(ServiceError):
                client.solve(Problem(Chain([2], [3]), "makespan", n=1,
                                     options={"bogus": True}))

    def test_persistent_store_across_server_restarts(self, tmp_path):
        store = tmp_path / "serve.sqlite"
        problem = Problem(Chain([2, 3], [3, 5]), "makespan", n=5)
        with ServiceClient.spawn(store_path=str(store), workers=1) as client:
            _, meta = client.solve(problem)
            assert meta["cached"] is False
        with ServiceClient.spawn(store_path=str(store), workers=1) as client:
            solution, meta = client.solve(problem)
            assert meta["cached"] is True
            assert solution.makespan == 14

    def test_shutdown_op_ends_stdio_server(self):
        with ServiceClient.spawn(workers=1) as client:
            assert client.ping()
            assert client.shutdown() is True
        # context exit waited for the process: EOF-free clean termination
        assert client._proc.returncode == 0


class TestTcpTransport:
    """serve_tcp + ServiceClient.connect, driven against a live server."""

    @pytest.fixture()
    def tcp_service(self):
        import threading

        service = ScheduleService(store=SolutionStore(), workers=1)
        loop = asyncio.new_event_loop()
        thread = threading.Thread(target=loop.run_forever, daemon=True)
        thread.start()
        port_ready = threading.Event()
        port_box: list[int] = []

        def ready(port: int) -> None:
            port_box.append(port)
            port_ready.set()

        server = asyncio.run_coroutine_threadsafe(
            service.serve_tcp("127.0.0.1", 0, ready=ready), loop
        )
        assert port_ready.wait(timeout=10), "server never bound a port"
        yield "127.0.0.1", port_box[0]
        server.cancel()
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=5)
        loop.close()
        service._pool.shutdown(wait=True)

    def test_solve_hit_and_shutdown_over_tcp(self, tcp_service):
        host, port = tcp_service
        problem = Problem(Chain([2, 3], [3, 5]), "makespan", n=5)
        with ServiceClient.connect(host, port) as client:
            assert client.ping()
            solution, meta = client.solve(problem)
            assert solution.makespan == 14 and meta["cached"] is False
            _, meta2 = client.solve(problem)
            assert meta2["cached"] is True
            assert client.shutdown() is True
            # the connection is closed; the next read sees EOF
            with pytest.raises(ServiceError, match="closed"):
                client.request({"op": "ping"})
        # ... but the server keeps listening for new connections
        with ServiceClient.connect(host, port) as client:
            _, meta3 = client.solve(problem)
            assert meta3["cached"] is True

    def test_cli_rejects_portless_tcp(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="HOST:PORT"):
            main(["serve", "--tcp", "localhost"])


class TestOversizedRequests:
    def test_too_long_line_answers_then_drops_connection(self):
        """A request past the reader's line limit gets a bad_request answer
        and a clean connection close, not a serving-loop crash."""

        async def go():
            service = ScheduleService(store=SolutionStore(), workers=1)
            sent = []
            calls = {"n": 0}

            async def readline():
                calls["n"] += 1
                if calls["n"] == 1:
                    raise ValueError("Separator is not found, and chunk exceed the limit")
                return b""  # must never be reached before the break

            async def send(text):
                # the serving loop hands the transport a serialised line
                sent.append(json.loads(text))

            try:
                await service.handle_connection(readline, send)
            finally:
                service._pool.shutdown(wait=True)
            return calls["n"], sent

        reads, sent = asyncio.run(go())
        assert reads == 1
        assert len(sent) == 1
        assert not sent[0]["ok"] and sent[0]["error_kind"] == "bad_request"
        assert "too long" in sent[0]["error"]
