"""JSON round trips of the solve-layer records (problems, solutions, traces).

These are the payloads the service store and the wire protocol archive, so
every field — including execution traces and tuple-shaped resource keys —
must survive ``to_dict → json → from_dict`` bit-exactly.
"""

import json

import pytest

from repro.io.json_io import (
    problem_from_dict,
    problem_to_dict,
    solution_from_dict,
    solution_to_dict,
    trace_from_dict,
    trace_to_dict,
)
from repro.core.types import ReproError
from repro.platforms.chain import Chain
from repro.platforms.spider import Spider
from repro.platforms.star import Star
from repro.platforms.tree import Tree
from repro.solve import Problem, solve


def roundtrip(d):
    """Force a real JSON pass so tuples/keys degrade exactly as on disk."""
    return json.loads(json.dumps(d))


PLATFORMS = [
    Chain([2, 3], [3, 5]),
    Star([(2, 3), (1, 5)]),
    Spider([Chain([2, 3], [3, 5]), Chain([1], [4])]),
    Tree([(0, 1, 2, 3), (0, 2, 1, 4), (2, 3, 2, 2)]),
]


class TestProblemRoundTrip:
    @pytest.mark.parametrize("platform", PLATFORMS,
                             ids=lambda p: type(p).__name__)
    def test_makespan_problem(self, platform):
        problem = Problem(platform, "makespan", n=6)
        back = problem_from_dict(roundtrip(problem_to_dict(problem)))
        assert back.kind == "makespan" and back.n == 6
        assert back.platform.to_dict() == platform.to_dict()
        assert back.mode == "offline" and back.allocator == problem.allocator

    def test_deadline_problem_with_options_and_caps(self):
        spider = Spider([Chain([2, 3], [3, 5]), Chain([1], [4])])
        problem = Problem(
            spider, "deadline", n=20, t_lim=35, allocator="greedy",
            options={"a": 1, "b": [1, 2]}, warm_caps={1: 9, 2: 4},
        )
        back = problem_from_dict(roundtrip(problem_to_dict(problem)))
        assert back.t_lim == 35 and back.n == 20
        assert back.allocator == "greedy"
        assert dict(back.options) == {"a": 1, "b": [1, 2]}
        assert back.warm_caps == {1: 9, 2: 4}  # int keys survive JSON

    def test_online_problem(self):
        problem = Problem(Chain([2], [3]), "makespan", n=3, mode="online",
                          options={"policy": "round_robin"})
        back = problem_from_dict(roundtrip(problem_to_dict(problem)))
        assert back.mode == "online"
        assert back.options["policy"] == "round_robin"

    def test_wrong_record_tag_rejected(self):
        with pytest.raises(ReproError):
            problem_from_dict({"record": "solution"})


class TestSolutionRoundTrip:
    @pytest.mark.parametrize("platform", PLATFORMS,
                             ids=lambda p: type(p).__name__)
    def test_offline_solution(self, platform):
        solution = solve(Problem(platform, "makespan", n=6))
        back = solution_from_dict(roundtrip(solution_to_dict(solution)))
        assert back.solver == solution.solver
        assert back.makespan == solution.makespan
        assert back.n_tasks == solution.n_tasks
        assert back.stats == solution.stats
        # schedule is bound to the reconstructed problem's platform object
        assert back.schedule.platform is back.problem.platform
        back.validate()  # the round trip must preserve replayability

    def test_warm_caps_and_extra_survive(self):
        spider = Spider([Chain([2, 3], [3, 5]), Chain([1], [4])])
        solution = solve(Problem(spider, "deadline", t_lim=35))
        assert solution.warm_caps is not None
        back = solution_from_dict(roundtrip(solution_to_dict(solution)))
        assert back.warm_caps == solution.warm_caps
        assert back.extra == solution.extra

    def test_online_solution_with_trace(self):
        spider = Spider([Chain([2, 3], [3, 5]), Chain([1], [4])])
        solution = solve(Problem(spider, "makespan", n=5, mode="online",
                                 options={"policy": "demand_driven"}))
        assert solution.trace is not None
        back = solution_from_dict(roundtrip(solution_to_dict(solution)))
        assert back.trace is not None
        assert back.trace.makespan == solution.trace.makespan
        assert back.trace.tasks_completed() == solution.trace.tasks_completed()
        assert back.trace.summary() == solution.trace.summary()
        back.validate()

    def test_trace_only_solution(self):
        """Fault runs have no schedule; the trace alone must round-trip."""
        star = Star([(2, 3), (1, 5), (2, 2)])
        solution = solve(Problem(
            star, "makespan", n=8, mode="online",
            options={"policy": "demand_driven",
                     "failures": [{"time": 6, "processor": 2}]},
        ))
        assert solution.schedule is None
        back = solution_from_dict(roundtrip(solution_to_dict(solution)))
        assert back.schedule is None
        assert back.makespan == solution.makespan
        assert back.n_tasks == solution.n_tasks
        back.validate()  # trace exclusivity re-check still works


class TestTraceRoundTrip:
    def test_tuple_resource_keys_survive(self):
        spider = Spider([Chain([2, 3], [3, 5]), Chain([1], [4])])
        trace = solve(Problem(spider, "makespan", n=4)).replay()
        back = trace_from_dict(roundtrip(trace_to_dict(trace)))
        assert len(back.events) == len(trace.events)
        assert back.busy.keys() == trace.busy.keys()
        for key, intervals in trace.busy.items():
            assert back.busy[key] == intervals
        for a, b in zip(trace.events, back.events):
            assert (a.time, a.kind, a.task, a.resource) == (
                b.time, b.kind, b.task, b.resource
            )

    def test_wrong_record_tag_rejected(self):
        with pytest.raises(ReproError):
            trace_from_dict({"record": "problem"})
