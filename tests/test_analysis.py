"""Tests for metrics, steady-state throughput and complexity fitting."""

import math
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.complexity import (
    chain_opcount_in_n,
    chain_opcount_in_p,
    fit_power_law,
    timed,
    wallclock_in_n,
)
from repro.analysis.metrics import (
    comparison_table,
    compute_metrics,
    format_table,
    optimality_ratio,
    speedup_over_single,
)
from repro.analysis.steady_state import (
    chain_steady_state,
    spider_steady_state,
    star_steady_state,
    tree_steady_state,
)
from repro.core.chain import chain_makespan, schedule_chain
from repro.platforms.chain import Chain
from repro.platforms.spider import Spider
from repro.platforms.star import Star
from repro.platforms.tree import Tree

from conftest import chains, stars


class TestMetrics:
    def test_fig2_metrics(self, fig2_chain):
        s = schedule_chain(fig2_chain, 5)
        m = compute_metrics(s)
        assert m.n_tasks == 5 and m.makespan == 14
        assert m.counts == {1: 4, 2: 1}
        # proc 1 runs 4 tasks x 3 units in 14 units
        assert math.isclose(m.proc_utilisation[1], 12 / 14)
        assert math.isclose(m.proc_utilisation[2], 5 / 14)

    def test_buffer_wait_positive_when_delayed(self, fig2_chain):
        s = schedule_chain(fig2_chain, 5)
        assert compute_metrics(s).buffer_wait > 0

    def test_bottleneck_port(self, fig2_chain):
        m = compute_metrics(schedule_chain(fig2_chain, 5))
        assert m.bottleneck_port == 0  # the master's port

    def test_mean_utilisation_bounds(self, fig2_chain):
        m = compute_metrics(schedule_chain(fig2_chain, 5))
        assert 0 < m.mean_proc_utilisation <= 1

    def test_optimality_ratio(self):
        assert optimality_ratio(15, 10) == 1.5
        assert optimality_ratio(0, 0) == 1.0
        assert optimality_ratio(5, 0) == float("inf")

    def test_comparison_table_sorted(self):
        rows = comparison_table({"opt": 10, "slow": 20, "mid": 15}, "opt")
        assert [r.label for r in rows] == ["opt", "mid", "slow"]
        assert rows[0].ratio == 1.0 and rows[2].ratio == 2.0

    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, 2], [33, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "33" in lines[3]

    def test_speedup(self, fig2_chain):
        s = schedule_chain(fig2_chain, 5)
        t_inf = fig2_chain.t_infinity(5)
        assert speedup_over_single(s, t_inf) == t_inf / 14


class TestSteadyState:
    def test_star_port_bound(self):
        # two children (1, 10): each can eat 1/10; port allows 1/c=1 total
        star = Star([(1, 10), (1, 10)])
        ss = star_steady_state(star)
        assert ss.throughput == Fraction(2, 10)

    def test_star_port_saturates(self):
        # child CPUs are fast; master port c=2 limits to 1/2
        star = Star([(2, 1), (2, 1)])
        ss = star_steady_state(star)
        assert ss.throughput == Fraction(1, 2)

    def test_star_greedy_prefers_cheap_link(self):
        star = Star([(1, 2), (4, 1)])
        ss = star_steady_state(star)
        # cheap link child eats 1/2 using 1/2 port budget; remaining 1/2
        # buys 1/8 from the expensive child: total 5/8
        assert ss.throughput == Fraction(5, 8)
        assert ss.child_rates == (Fraction(1, 2), Fraction(1, 8))

    def test_chain_single(self):
        assert chain_steady_state(Chain(c=(2,), w=(3,))).throughput == Fraction(1, 3)
        assert chain_steady_state(Chain(c=(3,), w=(2,))).throughput == Fraction(1, 3)

    def test_chain_nested_aggregation(self):
        # (c=2, w=3) then (c=3, w=5): tail eats 1/5 capped by 1/3;
        # head absorbs 1/3 + 1/5 = 8/15 capped by link 1/2
        ch = Chain(c=(2, 3), w=(3, 5))
        assert chain_steady_state(ch).throughput == Fraction(1, 2)

    def test_chain_deep_link_bound(self):
        ch = Chain(c=(1, 10), w=(100, 1))
        # tail: min(1/10, 1/1) = 1/10; head: min(1/1, 1/100 + 1/10) = 11/100
        assert chain_steady_state(ch).throughput == Fraction(11, 100)

    def test_spider_consistency_with_star(self):
        star = Star([(1, 2), (4, 1)])
        sp = Spider.from_star(star)
        assert spider_steady_state(sp).throughput == star_steady_state(star).throughput

    def test_tree_consistency_with_chain(self):
        ch = Chain(c=(2, 3), w=(3, 5))
        t = Tree([(0, 1, 2, 3), (1, 2, 3, 5)])
        assert tree_steady_state(t).throughput == chain_steady_state(ch).throughput

    def test_tree_consistency_with_star(self):
        star = Star([(1, 2), (4, 1)])
        t = Tree([(0, 1, 1, 2), (0, 2, 4, 1)])
        assert tree_steady_state(t).throughput == star_steady_state(star).throughput

    @given(stars(max_k=4))
    @settings(max_examples=40, deadline=None)
    def test_star_throughput_bounds(self, star):
        ss = star_steady_state(star)
        # cannot beat the port nor the sum of CPUs
        assert ss.throughput <= Fraction(1, min(ch.c for ch in star.children))
        assert ss.throughput <= sum(Fraction(1, ch.w) for ch in star.children)

    @given(chains(max_p=4))
    @settings(max_examples=40, deadline=None)
    def test_chain_rate_matches_asymptotic_makespan(self, ch):
        """E9's shape: n/makespan(n) approaches the steady-state rate."""
        thr = chain_steady_state(ch).throughput
        n = 64
        rate = Fraction(n, chain_makespan(ch, n))
        assert rate <= thr  # throughput is an upper bound
        # and within ~ O(1/n) of it
        assert float(thr - rate) <= float(thr) * 0.35

    def test_period_hint(self):
        ss = star_steady_state(Star([(2, 1)]))
        assert ss.period_hint == 1 / ss.throughput


class TestComplexityFits:
    def test_fit_power_law_exact(self):
        xs = [1, 2, 4, 8]
        ys = [3 * x**2 for x in xs]
        fit = fit_power_law(xs, ys)
        assert math.isclose(fit.exponent, 2.0, abs_tol=1e-9)
        assert math.isclose(fit.prefactor, 3.0, rel_tol=1e-9)
        assert fit.r_squared > 0.999

    def test_fit_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])

    def test_opcount_linear_in_n(self):
        ch = Chain.homogeneous(4, 2, 3)
        counts, fit = chain_opcount_in_n(ch, [8, 16, 32, 64, 128])
        assert math.isclose(fit.exponent, 1.0, abs_tol=1e-6)
        # exactly n * p(p+1)/2 elements
        assert counts[0] == 8 * 10

    def test_opcount_quadratic_in_p(self):
        counts, fit = chain_opcount_in_p(
            lambda p: Chain.homogeneous(p, 2, 3), [4, 8, 16, 32], n=16
        )
        # Σk = p(p+1)/2 per task: slope tends to 2 from above
        assert 1.8 <= fit.exponent <= 2.3

    def test_timed_returns_positive(self):
        assert timed(lambda: sum(range(1000))) > 0

    def test_wallclock_fit_runs(self):
        ch = Chain.homogeneous(3, 1, 2)
        times, fit = wallclock_in_n(ch, [16, 32, 64], repeats=1)
        assert len(times) == 3 and all(t > 0 for t in times)

    def test_str_format(self):
        fit = fit_power_law([1, 2, 4], [2, 4, 8])
        assert "x^" in str(fit)
