"""Theorem 1 — optimality of the chain algorithm, cross-checked exhaustively.

The exhaustive baseline enumerates all destination sequences with ASAP
forward semantics (pointwise minimal per sequence), so equality of makespans
on every random instance is a machine-checked instance of the theorem.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.bruteforce import max_tasks_within as bf_max_tasks
from repro.baselines.bruteforce import optimal_makespan
from repro.core.chain import chain_makespan, max_tasks_within, schedule_chain
from repro.platforms.chain import Chain
from repro.platforms.generators import random_chain

from conftest import chains


class TestAgainstBruteForce:
    @given(chains(max_p=3), st.integers(1, 5))
    @settings(max_examples=60, deadline=None)
    def test_makespan_equals_exhaustive_optimum(self, ch, n):
        assert chain_makespan(ch, n) == optimal_makespan(ch, n).makespan

    @given(chains(max_p=3), st.integers(0, 18))
    @settings(max_examples=40, deadline=None)
    def test_deadline_tasks_equal_exhaustive(self, ch, t_lim):
        ours = max_tasks_within(ch, t_lim)
        if ours >= 8:  # exhaustive search unaffordable beyond this
            return
        theirs = bf_max_tasks(ch, t_lim, cap=8).schedule.n_tasks
        assert ours == theirs

    def test_seeded_sweep_across_profiles(self):
        """Deterministic regression sweep (a compact version of E3)."""
        rng = random.Random(2003)
        for _ in range(30):
            profile = rng.choice(["balanced", "comm_bound", "cpu_bound"])
            ch = random_chain(rng.randint(1, 4), profile=profile, rng=rng)
            n = rng.randint(1, 6)
            assert chain_makespan(ch, n) == optimal_makespan(ch, n).makespan, (
                ch,
                n,
                profile,
            )


class TestKnownOptima:
    """Hand-checked instances with pen-and-paper optima."""

    def test_fig2(self):
        assert chain_makespan(Chain(c=(2, 3), w=(3, 5)), 5) == 14

    def test_two_identical_processors_pipeline(self):
        # c=(1,1), w=(4,4), n=2: t1 -> proc2 (link1 [0,1], link2 [1,2],
        # runs [2,6]); t2 -> proc1 (link1 [1,2], runs [2,6]).  Optimal 6.
        assert chain_makespan(Chain(c=(1, 1), w=(4, 4)), 2) == 6

    def test_worthless_second_processor(self):
        # second processor too far/slow to ever help for small n
        ch = Chain(c=(1, 100), w=(2, 100))
        assert chain_makespan(ch, 3) == ch.t_infinity(3)

    def test_fast_far_processor_wins_single_task(self):
        ch = Chain(c=(3, 1), w=(50, 1))
        assert chain_makespan(ch, 1) == 3 + 1 + 1

    def test_comm_dominated_chain(self):
        # link 1 is the bottleneck: makespan = n*c1 + pipeline tail
        ch = Chain(c=(4, 1), w=(1, 1))
        # brute force says:
        assert chain_makespan(ch, 4) == optimal_makespan(ch, 4).makespan

    def test_homogeneous_chain_spreads_load(self):
        ch = Chain.homogeneous(3, 1, 6)
        s = schedule_chain(ch, 3)
        assert s.task_counts() == {1: 1, 2: 1, 3: 1}


class TestOptimalSubstructure:
    @given(chains(max_p=3), st.integers(2, 6))
    @settings(max_examples=30, deadline=None)
    def test_removing_first_task_keeps_optimality(self, ch, n):
        """The proof of Theorem 1 uses: dropping the first task of an optimal
        schedule leaves an optimal (n-1)-task schedule shifted by C²₁."""
        mk_n = chain_makespan(ch, n)
        mk_prev = chain_makespan(ch, n - 1)
        s = schedule_chain(ch, n)
        second_emission = s[2].first_emission if n >= 2 else 0
        # T_max(n) - C²₁ >= T_max(n-1) (the inequality used in the proof)
        assert mk_n - second_emission >= mk_prev
