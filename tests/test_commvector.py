"""Unit tests for communication vectors and the ≺ order (Definition 3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.commvector import CommVector, greatest


class TestConstruction:
    def test_from_iterable(self):
        v = CommVector([1, 2, 3])
        assert v.times == (1, 2, 3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CommVector([])

    def test_len_is_processor_index(self):
        assert CommVector([0, 2, 5]).processor == 3

    def test_first_emission(self):
        assert CommVector([4, 6]).first_emission == 4

    def test_one_based_getitem(self):
        v = CommVector([10, 20, 30])
        assert v[1] == 10 and v[3] == 30

    def test_getitem_out_of_range(self):
        v = CommVector([10])
        with pytest.raises(IndexError):
            v[2]
        with pytest.raises(IndexError):
            v[0]

    def test_immutable(self):
        v = CommVector([1])
        with pytest.raises(AttributeError):
            v.times = (2,)  # type: ignore[misc]

    def test_iter(self):
        assert list(CommVector([1, 2])) == [1, 2]


class TestDefinition3Order:
    """The two branches of Definition 3."""

    def test_first_differing_element_decides(self):
        assert CommVector([1, 5]).precedes(CommVector([2, 0]))
        assert not CommVector([2, 0]).precedes(CommVector([1, 5]))

    def test_later_elements_break_ties(self):
        assert CommVector([1, 3]).precedes(CommVector([1, 4]))

    def test_prefix_rule_longer_is_inferior(self):
        # equal on the common prefix: longer ≺ shorter
        assert CommVector([1, 2, 3]).precedes(CommVector([1, 2]))
        assert not CommVector([1, 2]).precedes(CommVector([1, 2, 3]))

    def test_differing_lengths_with_difference(self):
        # difference inside the common prefix wins over the length rule
        assert CommVector([0, 9, 9]).precedes(CommVector([1]))
        assert CommVector([1]).precedes(CommVector([2, 0, 0]))

    def test_equal_vectors_do_not_precede(self):
        v = CommVector([1, 2])
        assert not v.precedes(CommVector([1, 2]))

    def test_strict_order_irreflexive(self):
        v = CommVector([3, 4])
        assert not v.precedes(v)

    def test_comparison_operators(self):
        a, b = CommVector([1]), CommVector([2])
        assert a < b and a <= b and b > a and b >= a
        assert a <= CommVector([1]) and a >= CommVector([1])

    @given(
        st.lists(st.integers(0, 9), min_size=1, max_size=4),
        st.lists(st.integers(0, 9), min_size=1, max_size=4),
    )
    def test_totality_on_distinct_vectors(self, xs, ys):
        a, b = CommVector(xs), CommVector(ys)
        if xs == ys:
            assert not a.precedes(b) and not b.precedes(a)
        else:
            assert a.precedes(b) != b.precedes(a)

    @given(
        st.lists(st.integers(0, 5), min_size=1, max_size=3),
        st.lists(st.integers(0, 5), min_size=1, max_size=3),
        st.lists(st.integers(0, 5), min_size=1, max_size=3),
    )
    def test_transitivity(self, xs, ys, zs):
        a, b, c = CommVector(xs), CommVector(ys), CommVector(zs)
        if a.precedes(b) and b.precedes(c):
            assert a.precedes(c)


class TestGreatest:
    def test_picks_max(self):
        vs = [CommVector([1, 2]), CommVector([3]), CommVector([2, 9])]
        assert greatest(vs) == CommVector([3])

    def test_shorter_wins_on_prefix_tie(self):
        vs = [CommVector([3, 1]), CommVector([3])]
        assert greatest(vs) == CommVector([3])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            greatest([])

    def test_single(self):
        assert greatest([CommVector([7])]) == CommVector([7])


class TestHelpers:
    def test_shifted(self):
        assert CommVector([1, 2]).shifted(3).times == (4, 5)

    def test_shifted_negative(self):
        assert CommVector([5, 7]).shifted(-5).times == (0, 2)

    def test_suffix(self):
        v = CommVector([1, 2, 3])
        assert v.suffix(2).times == (2, 3)
        assert v.suffix(1) == v

    def test_suffix_out_of_range(self):
        with pytest.raises(IndexError):
            CommVector([1]).suffix(2)

    def test_latency_monotonicity_check(self):
        v = CommVector([0, 2, 5])
        assert v.is_nondecreasing_with_latencies([2, 3])
        assert not v.is_nondecreasing_with_latencies([3, 3])
