"""Tests for analytic lower bounds and the makespan/deadline staircases."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.bounds import (
    makespan_lower_bound,
    port_bound,
    processor_bound,
    route_bound,
    steady_state_bound,
)
from repro.analysis.profiles import (
    StaircaseProfile,
    makespan_profile,
    verify_staircase_duality,
)
from repro.analysis.steady_state import chain_steady_state
from repro.core.chain import chain_makespan
from repro.core.fork import fork_schedule
from repro.core.spider import spider_makespan
from repro.core.types import PlatformError
from repro.platforms.chain import Chain
from repro.platforms.presets import paper_fig2_chain, paper_fig5_spider
from repro.platforms.star import Star

from conftest import chains, spiders, stars


class TestLowerBounds:
    @given(chains(max_p=4), st.integers(1, 12))
    @settings(max_examples=50, deadline=None)
    def test_chain_bounds_hold(self, ch, n):
        assert makespan_lower_bound(ch, n) <= chain_makespan(ch, n) + 1e-9

    @given(stars(max_k=3), st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_star_bounds_hold(self, star, n):
        assert makespan_lower_bound(star, n) <= fork_schedule(star, n).makespan + 1e-9

    @given(spiders(max_legs=3, max_depth=2), st.integers(1, 6))
    @settings(max_examples=25, deadline=None)
    def test_spider_bounds_hold(self, sp, n):
        assert makespan_lower_bound(sp, n) <= spider_makespan(sp, n) + 1e-9

    def test_bound_tight_on_master_only_chain(self):
        ch = Chain(c=(2,), w=(3,))
        # port bound: (n-1)*2 + 5; processor bound: 2 + 3n — proc wins
        assert processor_bound(ch, 4) == 2 + 12
        assert chain_makespan(ch, 4) == 14 == makespan_lower_bound(ch, 4)

    def test_port_bound_on_fig2(self, fig2_chain):
        assert port_bound(fig2_chain, 5) == 4 * 2 + 5

    def test_route_bound(self, fig2_chain):
        assert route_bound(fig2_chain) == 5  # c1 + w1

    def test_steady_state_bound_large_n(self, fig2_chain):
        n = 200
        ss = steady_state_bound(fig2_chain, n)
        thr = chain_steady_state(fig2_chain).throughput
        assert ss == pytest.approx((n - 1) / float(thr))
        assert ss <= chain_makespan(fig2_chain, n)

    def test_lower_bound_at_scale(self):
        """The sanity rail brute force cannot provide: n=500."""
        sp = paper_fig5_spider()
        n = 500
        mk = spider_makespan(sp, n)
        lb = makespan_lower_bound(sp, n)
        assert lb <= mk
        assert mk <= 1.2 * lb  # the algorithm lands close to the bound


class TestStaircaseProfiles:
    def test_fig2_breakpoints(self, fig2_chain):
        profile = makespan_profile(fig2_chain, 5)
        assert profile.makespan(5) == 14
        assert profile.breakpoints == tuple(
            chain_makespan(fig2_chain, n) for n in (1, 2, 3, 4, 5)
        )

    def test_tasks_within_inverts(self, fig2_chain):
        profile = makespan_profile(fig2_chain, 6)
        assert profile.tasks_within(14) == 5
        assert profile.tasks_within(13) == 4
        assert profile.tasks_within(0) == 0

    def test_marginal_costs_converge_to_cadence(self, fig2_chain):
        profile = makespan_profile(fig2_chain, 20)
        costs = profile.marginal_costs()
        thr = chain_steady_state(fig2_chain).throughput
        # tail marginal cost equals the steady-state cadence 1/throughput = 2
        assert costs[-1] == 1 / thr

    def test_out_of_range(self, fig2_chain):
        profile = makespan_profile(fig2_chain, 3)
        with pytest.raises(PlatformError):
            profile.makespan(4)
        with pytest.raises(PlatformError):
            profile.makespan(0)

    def test_rejects_bad_max_n(self, fig2_chain):
        with pytest.raises(PlatformError):
            makespan_profile(fig2_chain, 0)

    @given(chains(max_p=3))
    @settings(max_examples=25, deadline=None)
    def test_duality_on_chains(self, ch):
        verify_staircase_duality(ch, 6)

    @given(spiders(max_legs=2, max_depth=2))
    @settings(max_examples=15, deadline=None)
    def test_duality_on_spiders(self, sp):
        verify_staircase_duality(sp, 5)

    def test_duality_on_star(self):
        verify_staircase_duality(Star([(1, 3), (2, 2)]), 6)

    def test_profile_from_breakpoints_directly(self):
        profile = StaircaseProfile((3, 5, 9))
        assert profile.max_tasks == 3
        assert profile.tasks_within(5) == 2
        assert profile.marginal_costs() == [2, 4]
