"""Differential suite for the compiled solve kernels.

The compiled engine (:mod:`repro.core.solve_fast` behind
:mod:`repro.solve.compiled_solvers`) must be *bit-identical* to the
object solvers — same schedules, same makespans, same replay traces,
same error messages on infeasible inputs.  Every property here solves
the same problem through both engines and compares the full answer, so
any divergence in the array kernels shows up as a counterexample, not a
statistical drift.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.solve_fast import (
    SolveKernelUnsupported,
    clear_solve_kernels,
    export_solve_cores,
    seed_solve_cores,
    solve_kernel_stats,
)
from repro.core.types import PlatformError
from repro.platforms.chain import Chain
from repro.platforms.generators import random_chain, random_spider, random_star
from repro.platforms.star import Star
from repro.solve import (
    DEFAULT_SOLVE_ENGINE,
    SOLVE_ENGINES,
    Problem,
    SolveError,
    register_compiled,
    resolve_solve_engine,
    solve,
    solver_for,
)
from repro.solve.compiled_solvers import CompiledChainSolver

from conftest import chains, spiders, stars


def schedule_key(solution):
    """Bit-exact fingerprint of a schedule (or None)."""
    if solution.schedule is None:
        return None
    return {
        a.task: (str(a.processor), a.start, tuple(a.comms.times))
        for a in solution.schedule.assignments.values()
    }


def solve_both(problem):
    compiled = solve(problem, engine="compiled")
    obj = solve(problem, engine="object")
    return compiled, obj


def assert_identical(compiled, obj):
    assert schedule_key(compiled) == schedule_key(obj)
    assert compiled.makespan == obj.makespan
    assert compiled.n_tasks == obj.n_tasks
    assert compiled.warm_caps == obj.warm_caps
    # stats agree apart from the engine tag the compiled twin adds
    obj_stats = dict(obj.stats)
    comp_stats = dict(compiled.stats)
    comp_stats.pop("engine", None)
    obj_stats.pop("engine", None)
    assert set(obj_stats) <= set(comp_stats) | set(obj_stats)


# ---------------------------------------------------------------------------
# engine axis plumbing
# ---------------------------------------------------------------------------


class TestEngineAxis:
    def test_engines_and_default(self):
        assert SOLVE_ENGINES == ("compiled", "object")
        assert DEFAULT_SOLVE_ENGINE == "compiled"
        assert resolve_solve_engine(None) == "compiled"
        assert resolve_solve_engine("object") == "object"

    def test_typo_rejected(self):
        with pytest.raises(SolveError, match="'compiled', 'object'"):
            resolve_solve_engine("objcet")

    def test_solver_names_stable_across_engines(self):
        for platform, name in (
            (random_chain(3, seed=1), "chain"),
            (random_star(3, seed=1), "star"),
            (random_spider(2, 2, seed=1), "spider"),
        ):
            assert solver_for(platform).name == name
            assert solver_for(platform, engine="compiled").name == name
            assert solver_for(platform, engine="object").name == name

    def test_compiled_and_object_are_distinct_solvers(self):
        chain = random_chain(3, seed=2)
        compiled = solver_for(chain, engine="compiled")
        obj = solver_for(chain, engine="object")
        assert type(compiled) is not type(obj)

    def test_double_claim_raises(self):
        with pytest.raises(SolveError, match="already claimed"):
            register_compiled(CompiledChainSolver())


# ---------------------------------------------------------------------------
# chains
# ---------------------------------------------------------------------------


class TestChainDifferential:
    @given(chains(max_p=6), st.integers(1, 40))
    @settings(max_examples=80, deadline=None)
    def test_makespan(self, chain, n):
        compiled, obj = solve_both(Problem(chain, "makespan", n=n))
        assert_identical(compiled, obj)
        assert compiled.stats["engine"] == "compiled"

    @given(chains(max_p=6), st.integers(0, 60))
    @settings(max_examples=80, deadline=None)
    def test_deadline(self, chain, t_lim):
        compiled, obj = solve_both(Problem(chain, "deadline", t_lim=t_lim))
        assert_identical(compiled, obj)

    @given(chains(max_p=5), st.integers(1, 25), st.integers(0, 50))
    @settings(max_examples=60, deadline=None)
    def test_deadline_with_budget(self, chain, n, t_lim):
        compiled, obj = solve_both(
            Problem(chain, "deadline", n=n, t_lim=t_lim)
        )
        assert_identical(compiled, obj)

    @given(chains(max_p=5), st.integers(1, 20))
    @settings(max_examples=40, deadline=None)
    def test_replay_trace_identical(self, chain, n):
        compiled, obj = solve_both(Problem(chain, "makespan", n=n))
        assert compiled.replay() == obj.replay()
        compiled.validate()


# ---------------------------------------------------------------------------
# stars (the fork EDF allocator)
# ---------------------------------------------------------------------------


class TestStarDifferential:
    @given(stars(max_k=5), st.integers(1, 30),
           st.sampled_from(["incremental", "greedy"]))
    @settings(max_examples=80, deadline=None)
    def test_makespan(self, star, n, allocator):
        problem = Problem(star, "makespan", n=n, allocator=allocator)
        try:
            compiled = solve(problem, engine="compiled")
        except PlatformError as exc:
            with pytest.raises(PlatformError) as obj_exc:
                solve(problem, engine="object")
            assert str(exc) == str(obj_exc.value)
            return
        obj = solve(problem, engine="object")
        assert_identical(compiled, obj)
        assert compiled.stats["engine"] == "compiled"

    @given(stars(max_k=5), st.integers(0, 80),
           st.sampled_from(["incremental", "greedy"]))
    @settings(max_examples=80, deadline=None)
    def test_deadline(self, star, t_lim, allocator):
        compiled, obj = solve_both(
            Problem(star, "deadline", t_lim=t_lim, allocator=allocator)
        )
        assert_identical(compiled, obj)

    @given(stars(max_k=4), st.integers(1, 15), st.integers(0, 60))
    @settings(max_examples=60, deadline=None)
    def test_deadline_with_budget(self, star, n, t_lim):
        compiled, obj = solve_both(
            Problem(star, "deadline", n=n, t_lim=t_lim)
        )
        assert_identical(compiled, obj)

    @given(stars(max_k=4), st.integers(1, 12))
    @settings(max_examples=30, deadline=None)
    def test_replay_trace_identical(self, star, n):
        problem = Problem(star, "makespan", n=n)
        try:
            compiled = solve(problem, engine="compiled")
        except PlatformError:
            return
        obj = solve(problem, engine="object")
        assert compiled.replay() == obj.replay()
        compiled.validate()

    def test_moore_falls_back_to_object(self):
        star = random_star(3, seed=5)
        compiled = solve(
            Problem(star, "deadline", t_lim=30, allocator="moore"),
            engine="compiled",
        )
        obj = solve(
            Problem(star, "deadline", t_lim=30, allocator="moore"),
            engine="object",
        )
        assert compiled.stats["engine"] == "object"
        assert schedule_key(compiled) == schedule_key(obj)


# ---------------------------------------------------------------------------
# spiders
# ---------------------------------------------------------------------------


class TestSpiderDifferential:
    @given(spiders(max_legs=3, max_depth=3), st.integers(1, 25))
    @settings(max_examples=60, deadline=None)
    def test_makespan(self, spider, n):
        compiled, obj = solve_both(Problem(spider, "makespan", n=n))
        assert_identical(compiled, obj)
        assert compiled.stats["engine"] == "compiled"

    @given(spiders(max_legs=3, max_depth=3), st.integers(0, 70))
    @settings(max_examples=60, deadline=None)
    def test_deadline(self, spider, t_lim):
        compiled, obj = solve_both(Problem(spider, "deadline", t_lim=t_lim))
        assert_identical(compiled, obj)

    @given(spiders(max_legs=3, max_depth=2), st.integers(0, 40),
           st.lists(st.integers(0, 5), min_size=0, max_size=3))
    @settings(max_examples=60, deadline=None)
    def test_warm_caps(self, spider, t_lim, caps_list):
        caps = {i + 1: cap for i, cap in enumerate(caps_list)
                if i < len(list(spider.legs))}
        compiled, obj = solve_both(
            Problem(spider, "deadline", t_lim=t_lim, warm_caps=caps)
        )
        assert_identical(compiled, obj)

    @given(spiders(max_legs=3, max_depth=2), st.integers(1, 15))
    @settings(max_examples=30, deadline=None)
    def test_replay_trace_identical(self, spider, n):
        compiled, obj = solve_both(Problem(spider, "makespan", n=n))
        assert compiled.replay() == obj.replay()
        compiled.validate()


# ---------------------------------------------------------------------------
# edge cases and the fallback contract
# ---------------------------------------------------------------------------


class TestEdgesAndFallback:
    def test_zero_deadline_all_platforms(self):
        for platform in (random_chain(3, seed=3), random_star(3, seed=3),
                         random_spider(2, 2, seed=3)):
            compiled, obj = solve_both(
                Problem(platform, "deadline", t_lim=0)
            )
            assert_identical(compiled, obj)
            assert compiled.n_tasks == 0

    def test_single_processor_chain(self):
        compiled, obj = solve_both(
            Problem(Chain([2], [3]), "makespan", n=5)
        )
        assert_identical(compiled, obj)

    def test_float_platform_falls_back(self):
        chain = Chain([1.5, 2.0], [2.5, 3.0])
        compiled = solve(Problem(chain, "makespan", n=4), engine="compiled")
        obj = solve(Problem(chain, "makespan", n=4), engine="object")
        assert compiled.stats["engine"] == "object"
        assert schedule_key(compiled) == schedule_key(obj)

    def test_float_tlim_falls_back(self):
        chain = random_chain(3, seed=4)
        compiled = solve(
            Problem(chain, "deadline", t_lim=12.5), engine="compiled"
        )
        obj = solve(Problem(chain, "deadline", t_lim=12.5), engine="object")
        assert compiled.stats["engine"] == "object"
        assert compiled.n_tasks == obj.n_tasks

    def test_fallback_counts(self):
        before = solve_kernel_stats()["fallbacks"]
        solve(Problem(Chain([1.5], [2.5]), "makespan", n=2),
              engine="compiled")
        assert solve_kernel_stats()["fallbacks"] == before + 1

    def test_kernel_unsupported_is_raisable(self):
        with pytest.raises(SolveKernelUnsupported):
            raise SolveKernelUnsupported("no numpy")


# ---------------------------------------------------------------------------
# kernel cache counters and cross-process seeding (satellites 1 + 6)
# ---------------------------------------------------------------------------


class TestKernelCaches:
    def test_stats_shape(self):
        stats = solve_kernel_stats()
        for key in ("seq_hits", "seq_misses", "core_hits", "core_misses",
                    "kernel_solves", "kernel_probes", "fallbacks",
                    "seq_entries", "core_entries"):
            assert key in stats, key

    def test_solves_and_hits_accumulate(self):
        clear_solve_kernels()
        chain = random_chain(4, seed=9)
        solve(Problem(chain, "makespan", n=10), engine="compiled")
        mid = solve_kernel_stats()
        assert mid["kernel_solves"] == 1
        assert mid["seq_misses"] >= 1
        solve(Problem(chain, "makespan", n=10), engine="compiled")
        after = solve_kernel_stats()
        assert after["kernel_solves"] == 2
        assert after["seq_hits"] > mid["seq_hits"]

    def test_export_seed_roundtrip(self):
        clear_solve_kernels()
        chain = random_chain(4, seed=11)
        compiled, obj = solve_both(Problem(chain, "makespan", n=8))
        assert_identical(compiled, obj)
        exported = export_solve_cores()
        assert exported

        clear_solve_kernels()
        assert seed_solve_cores(exported) == len(exported)
        seeded = solve_kernel_stats()
        assert seeded["seq_entries"] == len(exported)
        # a seeded cache answers without re-deriving the sequence
        again = solve(Problem(chain, "makespan", n=8), engine="compiled")
        assert schedule_key(again) == schedule_key(obj)
        assert solve_kernel_stats()["seq_hits"] >= 1

    def test_clear_resets(self):
        solve(Problem(random_chain(3, seed=12), "makespan", n=4),
              engine="compiled")
        clear_solve_kernels()
        stats = solve_kernel_stats()
        assert stats["kernel_solves"] == 0
        assert stats["seq_entries"] == 0
        assert stats["core_entries"] == 0
