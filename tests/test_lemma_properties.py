"""Property tests for the paper's structural lemmas (§4).

Lemma 1 (no crossing): comparing two candidate vectors of the same task, the
≺-relation propagates backward hop by hop — candidate vectors never "cross".
Lemma 2 is covered in test_chain_algorithm (suffix/sub-chain projection);
here we additionally check the hull/occupancy invariants the proofs rely on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chain import _BackwardState, schedule_chain
from repro.core.commvector import CommVector
from repro.core.feasibility import emission_order

from conftest import chains


class TestLemma1NoCrossing:
    @given(chains(max_p=5), st.integers(1, 30))
    @settings(max_examples=80, deadline=None)
    def test_candidate_vectors_never_cross(self, ch, horizon):
        """For any hull/occupancy state reachable at any point of the run,
        if ᵏC ≺ ˡC then every aligned suffix satisfies the same relation
        (Lemma 1's statement)."""
        state = _BackwardState(ch, horizon)
        # drive the state through a few placements to diversify h/o
        for _ in range(3):
            best = state.best_candidate(None)
            if best[0] < 0:
                break
            state.commit(best)
        candidates = {k: state.candidate(k, None) for k in range(1, ch.p + 1)}
        for k in range(1, ch.p + 1):
            for l in range(1, ch.p + 1):
                if k == l:
                    continue
                a, b = candidates[k], candidates[l]
                if not CommVector(a).precedes(CommVector(b)):
                    continue
                # aligned suffixes from any q <= min(k, l) keep the relation
                for q in range(1, min(k, l) + 1):
                    sa = CommVector(a[q - 1 :])
                    sb = CommVector(b[q - 1 :])
                    assert not sb.precedes(sa), (
                        f"crossing between candidates {k} and {l} at hop {q}"
                    )

    @given(chains(max_p=4), st.integers(1, 25))
    @settings(max_examples=50, deadline=None)
    def test_greatest_candidate_maximises_first_emission(self, ch, horizon):
        """Used by the deadline stop rule: the ≺-greatest candidate has the
        maximal first emission time among all candidates."""
        state = _BackwardState(ch, horizon)
        best = state.best_candidate(None)
        for k in range(1, ch.p + 1):
            assert state.candidate(k, None)[0] <= best[0]


class TestBackwardStateInvariants:
    @given(chains(max_p=4), st.integers(1, 30), st.integers(1, 6))
    @settings(max_examples=50, deadline=None)
    def test_hull_and_occupancy_nonincreasing(self, ch, horizon, steps):
        """Each placement moves h and o backward (never forward in time)."""
        state = _BackwardState(ch, horizon)
        for _ in range(steps):
            h_before, o_before = list(state.h), list(state.o)
            best = state.best_candidate(None)
            if best[0] < 0:
                break
            state.commit(best)
            assert all(a <= b for a, b in zip(state.h[1:], h_before[1:]))
            assert all(a <= b for a, b in zip(state.o[1:], o_before[1:]))

    @given(chains(max_p=4), st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_emission_order_matches_task_index(self, ch, n):
        """WLOG convention of §2: C¹₁ <= C²₁ <= ... <= Cⁿ₁."""
        s = schedule_chain(ch, n)
        emissions = [s[t].first_emission for t in s.tasks()]
        assert emissions == sorted(emissions)
        assert emission_order(s) == s.tasks()
