"""Tests of the fork/star algorithm (§6, Beaumont et al. [2])."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.bruteforce import max_tasks_within as bf_max_tasks
from repro.baselines.bruteforce import optimal_makespan
from repro.core.feasibility import check, check_deadline
from repro.core.fork import (
    VirtualSlave,
    allocate_greedy,
    allocate_moore_hodgson,
    expand_star,
    fork_max_tasks,
    fork_schedule,
    fork_schedule_deadline,
)
from repro.platforms.star import Star

from conftest import stars


class TestExpansion:
    """Fig. 6: one physical node becomes a ladder of single-task slaves."""

    def test_virtual_works_are_arithmetic(self):
        star = Star([(2, 3)])  # m = max(2,3) = 3
        slaves = expand_star(star, t_lim=20)
        works = sorted(s.work for s in slaves)
        assert works == [3, 6, 9, 12, 15, 18]
        assert all(s.c == 2 for s in slaves)

    def test_comm_bound_node_cadence(self):
        star = Star([(5, 2)])  # m = 5: link is the bottleneck
        slaves = expand_star(star, t_lim=18)
        assert sorted(s.work for s in slaves) == [2, 7, 12]

    def test_infeasible_copies_not_generated(self):
        star = Star([(2, 3)])
        assert expand_star(star, t_lim=4) == []  # c + w = 5 > 4

    def test_cap(self):
        star = Star([(1, 1)])
        assert len(expand_star(star, t_lim=100, cap=3)) == 3

    def test_tags_identify_origin(self):
        star = Star([(1, 2), (1, 3)])
        tags = {s.tag for s in expand_star(star, t_lim=6)}
        assert (1, 0) in tags and (2, 0) in tags


class TestAllocators:
    def cases(self):
        return [
            ([VirtualSlave(2, 3, "a"), VirtualSlave(2, 6, "b")], 10),
            ([VirtualSlave(1, 1, i) for i in range(5)], 4),
            ([VirtualSlave(3, 2, "x"), VirtualSlave(1, 8, "y"), VirtualSlave(2, 5, "z")], 9),
        ]

    def test_greedy_feasible_and_edf_serialised(self):
        for slaves, t_lim in self.cases():
            alloc = allocate_greedy(slaves, t_lim)
            clock = 0
            for s, e in zip(alloc.accepted, alloc.emissions):
                assert e == clock
                clock += s.c
                assert e + s.c <= s.deadline(t_lim)

    def test_moore_hodgson_feasible(self):
        for slaves, t_lim in self.cases():
            alloc = allocate_moore_hodgson(slaves, t_lim)
            for s, e in zip(alloc.accepted, alloc.emissions):
                assert e + s.c <= s.deadline(t_lim)

    @given(
        st.lists(
            st.tuples(st.integers(1, 5), st.integers(1, 9)), min_size=0, max_size=8
        ),
        st.integers(0, 25),
    )
    @settings(max_examples=100, deadline=None)
    def test_greedy_matches_moore_hodgson_cardinality(self, raw, t_lim):
        """The paper's greedy is optimal (ref [2]); Moore–Hodgson is the
        textbook optimum — their accepted counts must agree always."""
        slaves = [VirtualSlave(c, w, i) for i, (c, w) in enumerate(raw)]
        g = allocate_greedy(slaves, t_lim)
        m = allocate_moore_hodgson(slaves, t_lim)
        assert g.n_tasks == m.n_tasks

    def test_emission_of_lookup(self):
        alloc = allocate_greedy([VirtualSlave(2, 3, "a")], 10)
        assert alloc.emission_of("a") == 0
        with pytest.raises(KeyError):
            alloc.emission_of("zzz")


class TestForkDeadline:
    def test_single_child_counts(self):
        star = Star([(2, 3)])
        # q tasks need 2 + 3 + (q-1)*3 <= Tlim
        assert fork_max_tasks(star, 4) == 0
        assert fork_max_tasks(star, 5) == 1
        assert fork_max_tasks(star, 8) == 2
        assert fork_max_tasks(star, 11) == 3

    def test_schedules_feasible(self):
        star = Star([(2, 3), (1, 4), (3, 2)])
        for t_lim in range(0, 15):
            s = fork_schedule_deadline(star, t_lim)
            assert check_deadline(s, t_lim) == []

    def test_negative_tlim_rejected(self):
        with pytest.raises(Exception):
            fork_schedule_deadline(Star([(1, 1)]), -1)

    @given(stars(max_k=3), st.integers(0, 16))
    @settings(max_examples=50, deadline=None)
    def test_matches_exhaustive_max_tasks(self, star, t_lim):
        ours = fork_max_tasks(star, t_lim)
        if ours >= 9:  # exhaustive search unaffordable beyond this
            return
        theirs = bf_max_tasks(star, t_lim, cap=9).schedule.n_tasks
        assert ours == theirs

    @given(stars(max_k=3), st.integers(0, 16))
    @settings(max_examples=50, deadline=None)
    def test_both_allocators_agree_on_stars(self, star, t_lim):
        assert fork_max_tasks(star, t_lim, allocator="greedy") == fork_max_tasks(
            star, t_lim, allocator="moore"
        )

    def test_task_budget_respected(self):
        star = Star([(1, 1), (1, 1)])
        s = fork_schedule_deadline(star, 50, n=4)
        assert s.n_tasks == 4


class TestForkMakespan:
    @given(stars(max_k=3), st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_matches_exhaustive_optimum(self, star, n):
        s = fork_schedule(star, n)
        assert s.n_tasks == n
        assert check(s) == []
        assert s.makespan == optimal_makespan(star, n).makespan

    def test_bus_example(self):
        """Homogeneous links (the bus of ref [10]): port saturates first."""
        star = Star([(2, 4), (2, 4), (2, 4)])
        s = fork_schedule(star, 6)
        assert s.makespan == optimal_makespan(star, 6).makespan

    def test_heterogeneous_prefers_fast_link(self):
        star = Star([(1, 5), (4, 2)])
        s = fork_schedule(star, 1)
        assert s[1].processor == 1 or s.makespan <= 6
