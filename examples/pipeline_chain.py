#!/usr/bin/env python3
"""Deep dive on chains: deadline scheduling, fluid bounds and scaling.

Chains model store-and-forward lines of machines (the paper also cites
Li [7], who reduces homogeneous grids to heterogeneous chains).  This
example walks through everything the library can say about one chain:

1. the optimal schedule and its Gantt chart (SVG written next to this file),
2. the deadline variant: how many tasks fit in a time budget,
3. the divisible-load (fluid) lower bound and the quantisation gap,
4. the O(n·p²) scaling claim, measured.

Run:  python examples/pipeline_chain.py
"""

from pathlib import Path

from repro import Chain, schedule_chain, schedule_chain_deadline
from repro.analysis.complexity import chain_opcount_in_n
from repro.analysis.metrics import format_table
from repro.analysis.steady_state import chain_steady_state
from repro.baselines.divisible import chain_fluid_bound
from repro.core.feasibility import assert_feasible
from repro.io.json_io import save_schedule
from repro.viz.gantt import render_gantt
from repro.viz.svg import save_svg

chain = Chain(c=(1, 2, 1, 3), w=(4, 3, 5, 2))
N = 12
OUT = Path.cwd()  # artefacts land wherever you run the example from

# -- 1. optimal schedule ---------------------------------------------------------
schedule = schedule_chain(chain, N)
assert_feasible(schedule)
print(f"chain {chain}")
print(f"optimal makespan for {N} tasks: {schedule.makespan}\n")
print(render_gantt(schedule, width=72))

svg_path = save_svg(schedule, str(OUT / "pipeline_chain.svg"),
                    title=f"Optimal schedule, {N} tasks on {chain}")
json_path = save_schedule(schedule, OUT / "pipeline_chain.json")
print(f"\nwrote {svg_path}\nwrote {json_path}")

# -- 2. deadline scheduling --------------------------------------------------------
print("\nhow many tasks fit in a time budget? (§7's deadline variant)")
rows = []
for t_lim in (10, 20, 40, 80):
    fitted = schedule_chain_deadline(chain, t_lim)
    rows.append((t_lim, fitted.n_tasks))
print(format_table(["Tlim", "tasks completed"], rows))

# -- 3. fluid (divisible-load) comparison -------------------------------------------
print("\nquantum optimum vs fluid lower bound (refs [5][6] of the paper):")
rows = []
for n in (4, 16, 64, 256):
    quantum = schedule_chain(chain, n).makespan
    fluid = chain_fluid_bound(chain, n).finish_time
    rows.append((n, quantum, f"{fluid:.1f}", f"{(quantum - fluid) / fluid:.2%}"))
print(format_table(["n", "quantum", "fluid bound", "gap"], rows))
print(f"steady-state throughput: {chain_steady_state(chain).throughput} tasks/unit")

# -- 4. measured complexity -----------------------------------------------------------
counts, fit = chain_opcount_in_n(chain, [32, 64, 128, 256, 512])
print(f"\noperation count vs n: {counts}")
print(f"fitted power law: {fit}  (Theorem 1 predicts exponent 1)")
