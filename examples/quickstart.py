#!/usr/bin/env python3
"""Quickstart: schedule the paper's Fig. 2 instance and look at the result.

Run:  python examples/quickstart.py
"""

from repro import Chain, assert_feasible, schedule_chain
from repro.analysis.metrics import compute_metrics
from repro.viz.gantt import render_gantt, render_timeline

# -- 1. describe the platform -------------------------------------------------
# A chain: master -> (link c=2) -> P1 (w=3) -> (link c=3) -> P2 (w=5).
# This is the worked example of the paper (Fig. 2).
chain = Chain(c=(2, 3), w=(3, 5))

# -- 2. run the paper's optimal algorithm --------------------------------------
schedule = schedule_chain(chain, n=5)
print(f"optimal makespan for 5 tasks: {schedule.makespan}")   # -> 14

# -- 3. verify it against Definition 1 ------------------------------------------
assert_feasible(schedule)  # raises with a violation list if anything is wrong

# -- 4. inspect -----------------------------------------------------------------
print()
print(render_gantt(schedule))
print()
print(render_timeline(schedule))

metrics = compute_metrics(schedule)
print()
print(f"tasks per processor : {metrics.counts}")
print(f"processor utilisation: "
      f"{ {p: f'{u:.0%}' for p, u in sorted(metrics.proc_utilisation.items())} }")
print(f"time spent buffered  : {metrics.buffer_wait} "
      f"(the 'dashed' delayed task of the paper's Fig. 2)")
