#!/usr/bin/env python3
"""Volunteer churn: what happens when hosts die mid-run?

The paper's model assumes reliable workers; real volunteer platforms
(SETI@home, §1) lose hosts constantly.  This example injects fail-stop
failures into the online simulation and measures the damage: makespan
stretch, reissued tasks, and — a counter-intuitive finding — that losing a
*slow* straggler can actually *help* a naive demand-driven master.

Run:  python examples/churn_resilience.py
"""

from repro.analysis.metrics import format_table
from repro.platforms.presets import seti_like_spider
from repro.sim.faults import (
    WorkerFailure,
    assert_trace_exclusive,
    simulate_with_failures,
)

N_TASKS = 30
spider = seti_like_spider()
print(f"platform: {spider.arity} legs, {spider.total_processors} hosts; "
      f"{N_TASKS} tasks, demand-driven master\n")

scenarios = {
    "no failures": [],
    "slow volunteer dies (t=6)": [WorkerFailure(6, (4, 1))],
    "cluster node dies (t=6)": [WorkerFailure(6, (1, 2))],
    "rolling churn, 3 hosts": [
        WorkerFailure(4, (3, 1)),
        WorkerFailure(9, (5, 1)),
        WorkerFailure(14, (6, 1)),
    ],
}

rows = []
clean = None
for label, failures in scenarios.items():
    result = simulate_with_failures(spider, N_TASKS, failures)
    assert_trace_exclusive(result.trace)   # exclusivity holds through churn
    if clean is None:
        clean = result.makespan
    rows.append((
        label,
        result.makespan,
        f"x{result.makespan / clean:.2f}",
        result.attempts,
        result.reissues,
        len(result.survivors),
    ))

print(format_table(
    ["scenario", "makespan", "vs clean", "dispatches", "reissues", "survivors"],
    rows,
))

print("""
notes:
  * a dying node loses everything queued/executing there; the master
    reissues lost tasks to survivors (watch the 'dispatches' column);
  * killing a node mid-leg also strands everything *behind* it -- links
    are the only way in (store-and-forward chains);
  * losing a slow straggler can shorten the naive policy's makespan: the
    demand-driven master stops feeding it.  The paper's bandwidth-aware
    allocation avoids that trap without needing the failure.
""")
