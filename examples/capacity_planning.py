#!/usr/bin/env python3
"""Capacity planning with steady-state analysis: where to spend the budget?

The bandwidth-centric steady state (Beaumont et al. [2], the foundation of
the paper's §6) answers design questions without simulating anything:
*what limits my platform's task rate — links or CPUs — and what upgrade
buys the most throughput?*

This example takes a small volunteer star, computes its exact rational
throughput, then evaluates every single-component upgrade and ranks them.
Finally it cross-checks the analysis against the paper's finite-n optimal
schedules.

Run:  python examples/capacity_planning.py
"""

from fractions import Fraction

from repro.analysis.metrics import format_table
from repro.analysis.steady_state import star_steady_state
from repro.core.fork import fork_schedule
from repro.platforms.spec import ProcessorSpec
from repro.platforms.star import Star

base = Star([(2, 4), (3, 3), (5, 2), (5, 8)])
base_ss = star_steady_state(base)
print("platform: master with children (c=link latency, w=work per task)")
print(format_table(
    ["child", "c", "w", "granted rate"],
    [
        (i + 1, ch.c, ch.w, str(rate))
        for i, (ch, rate) in enumerate(zip(base.children, base_ss.child_rates))
    ],
))
print(f"\nsteady-state throughput: {base_ss.throughput} = "
      f"{float(base_ss.throughput):.4f} tasks/unit\n")

# -- what-if: halve one c or one w at a time ---------------------------------------
candidates: list[tuple[str, Star]] = []
for i, ch in enumerate(base.children):
    if ch.c > 1:
        upgraded = list(base.children)
        upgraded[i] = ProcessorSpec(max(1, ch.c // 2), ch.w)
        candidates.append((f"halve link of child {i + 1} (c={ch.c})", Star(upgraded)))
    if ch.w > 1:
        upgraded = list(base.children)
        upgraded[i] = ProcessorSpec(ch.c, max(1, ch.w // 2))
        candidates.append((f"halve work of child {i + 1} (w={ch.w})", Star(upgraded)))

rows = []
for label, star in candidates:
    thr = star_steady_state(star).throughput
    gain = thr - base_ss.throughput
    rows.append((label, str(thr), f"+{float(gain):.4f}", float(gain)))
rows.sort(key=lambda r: -r[3])
print("upgrade ranking (steady state):")
print(format_table(["upgrade", "throughput", "gain"], [r[:3] for r in rows]))

# -- cross-check with finite-n optimal schedules -------------------------------------
best_label, best_star = next(
    (label, star) for label, star in candidates
    if str(star_steady_state(star).throughput) == rows[0][1]
)
n = 60
mk_base = fork_schedule(base, n).makespan
mk_best = fork_schedule(best_star, n).makespan
print(f"\ncross-check with the optimal schedule for n={n} tasks:")
print(f"  base platform     : makespan {mk_base}  (rate {n / mk_base:.4f})")
print(f"  '{best_label}': makespan {mk_best}  (rate {n / mk_best:.4f})")
assert mk_best <= mk_base
print("\nthe steady-state ranking agrees with the exact finite-n optimum.")
