#!/usr/bin/env python3
"""One entry point for every platform: the ``repro.solve`` registry.

The same two lines answer scheduling questions on a chain, a star, a
spider, and a general tree — the registry resolves the platform type to
the claiming solver (the optimal paper algorithms for chains/stars/spiders,
the multi-round cover scheduler for trees), and each solver reports its own
operation counters and extras.

The example also registers a toy solver for a custom platform type, to show
that opening a new workload to the CLI/batch/benchmark stack is one
``register()`` call.

Run:  python examples/solver_registry.py
"""

from repro.analysis.metrics import format_table
from repro.core.feasibility import assert_feasible
from repro.platforms.generators import (
    random_chain,
    random_spider,
    random_star,
    random_tree,
)
from repro.solve import (
    Problem,
    Solution,
    Solver,
    register,
    registered_solvers,
    solve,
    unregister,
)

print("registered solvers:")
for s in registered_solvers():
    caps = "warm-caps" if s.supports_warm_caps else "stateless"
    print(f"  {s.name:<8}[{caps}]  {s.summary}")

platforms = {
    "chain": random_chain(4, seed=7),
    "star": random_star(5, seed=7),
    "spider": random_spider(3, 3, seed=7),
    "tree": random_tree(9, profile="cpu_heavy", seed=310),
}

rows = []
for label, platform in platforms.items():
    sol = solve(Problem(platform, "makespan", n=12))
    assert_feasible(sol.schedule)
    extra = f"{len(sol.extra['rounds'])} cover round(s)" if label == "tree" else ""
    rows.append((label, sol.solver, sol.makespan, sol.n_tasks, extra))
print("\nthe same call on four platform types (makespan of 12 tasks):")
print(format_table(["platform", "solver", "makespan", "tasks", "notes"], rows))

# deadline mode with warm caps: a spider sweep reusing monotone leg counts
spider = platforms["spider"]
caps = None
sweep_rows = []
for t_lim in (40, 30, 20, 10):
    sol = solve(Problem(spider, "deadline", t_lim=t_lim, warm_caps=caps))
    caps = sol.warm_caps  # valid for every smaller deadline
    sweep_rows.append((t_lim, sol.n_tasks, sol.stats["legs_skipped"]))
print("\nwarm deadline sweep on the spider (caps carried downward):")
print(format_table(["t_lim", "tasks", "legs skipped via caps"], sweep_rows))


# -- registering a custom platform ------------------------------------------
class Singleton:
    """A toy platform: one worker, one link."""

    def __init__(self, c, w):
        self.c, self.w = c, w


class SingletonSolver(Solver):
    name = "singleton"
    platform_type = Singleton
    kinds = ("makespan",)
    summary = "toy example: a single (c, w) worker"

    def solve(self, problem):
        from repro.core.commvector import CommVector
        from repro.core.schedule import Schedule, TaskAssignment
        from repro.platforms.star import Star

        star = Star([(problem.platform.c, problem.platform.w)])
        sched = Schedule(star)
        t = 0
        for i in range(1, problem.n + 1):
            start = max(i * problem.platform.c, t + problem.platform.w) if i > 1 else problem.platform.c
            sched.add(TaskAssignment(i, 1, start, CommVector([(i - 1) * problem.platform.c])))
            t = start
        return Solution(problem, sched, self.name)


register(SingletonSolver())
try:
    sol = solve(Problem(Singleton(2, 3), "makespan", n=4))
    assert_feasible(sol.schedule)
    print(f"\ncustom platform through the same solve(): makespan {sol.makespan} "
          f"for 4 tasks via solver {sol.solver!r}")
finally:
    unregister(Singleton)
