#!/usr/bin/env python3
"""General trees by spider covering — running the paper's future work (§8).

  "The long term objective ... is to provide good heuristics for scheduling
   on complicated graphs of heterogeneous processors, by covering those
   graphs with simpler structures."

This example generates a random tree, covers it with a spider (keeping, under
each child of the master, the root-to-leaf path with the best steady-state
throughput), schedules optimally on the cover, and measures how much of the
full tree's capacity the cover captured.  It then runs the *multi-round*
cover scheduler — re-covering the residual tree round after round and
threading the rounds through each other's idle resource gaps — and shows
the tasks it recovers at the same deadline.  It also prints the DOT
rendering of both graphs so you can look at what was kept.

Run:  python examples/tree_covering.py
"""

from repro.analysis.metrics import format_table
from repro.analysis.steady_state import tree_steady_state
from repro.core.feasibility import assert_feasible
from repro.platforms.generators import random_tree
from repro.trees.heuristic import best_path_cover, cover_efficiency, tree_schedule_by_cover
from repro.trees.multiround import tree_schedule_multiround_deadline
from repro.viz.dot import platform_to_dot

N_TASKS = 30

tree = random_tree(9, max_children=3, profile="cpu_heavy", seed=2003)
print(f"random tree with {tree.p} workers; spider already? {tree.is_spider()}")
print(f"bandwidth-centric capacity of the FULL tree: "
      f"{tree_steady_state(tree).throughput} tasks/unit\n")

cover = best_path_cover(tree)
print(f"spider cover keeps {len(cover.covered)}/{tree.p} workers "
      f"({sorted(cover.covered)}); dropped {sorted(cover.uncovered)}")
print(format_table(
    ["leg", "tree nodes (top-down)"],
    [(i + 1, " -> ".join(map(str, leg))) for i, leg in enumerate(cover.legs)],
))

schedule = tree_schedule_by_cover(tree, N_TASKS, cover)
assert_feasible(schedule)
eff = cover_efficiency(tree, N_TASKS, schedule.makespan)
print(f"\noptimal schedule on the cover: makespan {schedule.makespan} "
      f"for {N_TASKS} tasks")
print(f"cover efficiency vs the full tree's steady-state bound: {eff:.1%}")
print("(<100% is the price of covering; the dropped workers are idle)")

# -- multi-round covering: re-cover the residual tree until nothing fits ----
T_LIM = 2 * schedule.makespan
from repro.core.spider import spider_schedule_deadline  # noqa: E402
single_tasks = spider_schedule_deadline(cover.spider, T_LIM).n_tasks
multi = tree_schedule_multiround_deadline(tree, T_LIM)
assert_feasible(multi.schedule)
print(f"\n--- multi-round covering at deadline Tlim={T_LIM} ---")
print(format_table(
    ["round", "tasks", "shift", "window", "new workers"],
    [(r.index, r.n_tasks, r.shift, r.window,
      ",".join(map(str, r.new_workers)) or "-") for r in multi.rounds],
))
print(f"single cover: {single_tasks} tasks; multi-round: {multi.n_tasks} tasks "
      f"(+{multi.n_tasks - single_tasks}) over {len(multi.rounds)} round(s)")
print(f"worker coverage {multi.coverage:.0%}; efficiency vs bound "
      f"{multi.efficiency():.1%}")

print("\n--- tree (DOT) ---")
print(platform_to_dot(tree, "full_tree"))
print("\n--- cover (DOT) ---")
print(platform_to_dot(cover.spider, "spider_cover"))
