#!/usr/bin/env python3
"""Volunteer computing: what does offline optimality buy over online serving?

The paper's introduction motivates the model with SETI@home-style platforms:
a master distributing identical work units over wildly heterogeneous links
and hosts.  This example builds such a platform (a spider: a couple of lab
clusters behind fast links plus a tail of slow home machines), computes the
paper's optimal schedule, and then *simulates* three realistic online
serving policies, comparing makespans and resource usage.

Run:  python examples/volunteer_computing.py
"""

from repro.analysis.metrics import comparison_table, format_table
from repro.analysis.steady_state import spider_steady_state
from repro.core.feasibility import assert_feasible
from repro.core.spider import spider_schedule
from repro.platforms.presets import seti_like_spider
from repro.sim.executor import verify_by_execution
from repro.sim.online import ONLINE_POLICIES, simulate_online

N_TASKS = 40

spider = seti_like_spider()
print(f"platform: {spider.arity} legs, {spider.total_processors} hosts")
throughput = spider_steady_state(spider)
print(f"steady-state capacity: {throughput.throughput} tasks/unit "
      f"(= {float(throughput.throughput):.3f})\n")

# -- offline optimum (the paper's algorithm) ------------------------------------
optimal = spider_schedule(spider, N_TASKS)
assert_feasible(optimal)
trace = verify_by_execution(optimal)   # execute it on the simulated platform
print(f"offline optimal makespan: {optimal.makespan} "
      f"(simulated execution agrees: {trace.makespan})")

# -- online policies --------------------------------------------------------------
results = {"offline optimal (paper)": optimal.makespan}
per_policy_util = {}
for policy in sorted(ONLINE_POLICIES):
    res = simulate_online(spider, N_TASKS, policy)
    assert_feasible(res.schedule)
    results[policy] = res.makespan
    per_policy_util[policy] = res.trace.utilisation(("port", "master"))

rows = comparison_table(results, "offline optimal (paper)")
print()
print(format_table(
    ["strategy", "makespan", "vs optimal"],
    [(r.label, r.makespan, f"x{r.ratio:.3f}") for r in rows],
))

print()
print("master-port utilisation under each online policy:")
for policy, util in sorted(per_policy_util.items()):
    print(f"  {policy:<20} {util:.1%}")

print(f"""
reading the table:
  * the offline optimum needs global knowledge and is the floor;
  * 'bandwidth_centric' (serve cheap links first, never over-buffer)
    tracks it closely -- this is the online rendition of the steady-state
    rule the paper builds on;
  * speed-blind policies (round robin) pay heavily on heterogeneous
    volunteer platforms.
""")
