#!/usr/bin/env python3
"""Deadline tradeoffs: the two dual views of master-slave scheduling.

The paper solves the same problem from two sides: *minimum makespan for n
tasks* (§3) and *maximum tasks within a deadline Tlim* (§7).  The two are
inverse staircases, and their breakpoints answer practical questions:

* "I have 20 time units — how much work can I push?"
* "I need 8 more tasks done — how much deadline does that cost?"
* "What does the marginal task cost once the platform is saturated?"

This example materialises both staircases for the paper's Fig. 2 chain and
for a spider, shows the marginal costs converging to the steady-state
cadence, and sandwiches everything between the analytic lower bounds.

Run:  python examples/deadline_tradeoffs.py
"""

from repro.analysis.bounds import makespan_lower_bound
from repro.analysis.metrics import format_table
from repro.analysis.profiles import makespan_profile, verify_staircase_duality
from repro.analysis.steady_state import chain_steady_state, spider_steady_state
from repro.core.chain import max_tasks_within
from repro.platforms.presets import paper_fig2_chain, paper_fig5_spider

chain = paper_fig2_chain()
print(f"platform: the paper's Fig. 2 chain {chain}\n")

# -- the makespan staircase --------------------------------------------------
profile = makespan_profile(chain, 12)
verify_staircase_duality(chain, 12)   # the two formulations invert exactly
rows = [
    (n, profile.makespan(n), cost)
    for n, cost in zip(range(2, 13), profile.marginal_costs())
]
print("optimal makespan per task count, and what each extra task costs:")
print(format_table(["n", "makespan(n)", "marginal cost of task n"],
                   [(1, profile.makespan(1), "-")] + rows))
cadence = 1 / chain_steady_state(chain).throughput
print(f"\nsteady-state cadence 1/throughput* = {cadence} "
      f"(the marginal cost converges to it)\n")

# -- the dual view: tasks within a budget ---------------------------------------
print("dual staircase — tasks completable within a time budget:")
rows = [(t, max_tasks_within(chain, t)) for t in (5, 8, 11, 14, 20, 30)]
print(format_table(["Tlim", "max tasks"], rows))

# -- sandwich against the analytic bounds -----------------------------------------
spider = paper_fig5_spider()
print("\nlower-bound sandwich on the Fig. 5-style spider "
      f"(throughput* = {spider_steady_state(spider).throughput}):")
from repro.core.spider import spider_makespan

rows = []
for n in (10, 40, 160):
    mk = spider_makespan(spider, n)
    lb = makespan_lower_bound(spider, n)
    rows.append((n, mk, f"{lb:.1f}", f"{float(mk) / lb:.3f}"))
print(format_table(["n", "optimal makespan", "lower bound", "ratio"], rows))
print("\nthe ratio → 1: the algorithm provably leaves nothing on the table "
      "at scale, without needing exhaustive search to certify it.")
